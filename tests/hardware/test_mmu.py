"""Unit tests for both MMU ports (shared behaviour, parametrized)."""

import pytest

from repro.errors import InvalidOperation, PageFault, ProtectionViolation
from repro.hardware.inverted_mmu import InvertedMMU
from repro.hardware.paged_mmu import PagedMMU
from repro.hardware.segmented_mmu import SegmentedMMU
from repro.hardware.mmu import Prot
from repro.units import KB

PAGE = 8 * KB


@pytest.fixture(params=[PagedMMU, InvertedMMU, SegmentedMMU],
                ids=["paged", "inverted", "segmented"])
def mmu(request):
    return request.param(page_size=PAGE)


class TestSpaces:
    def test_spaces_have_distinct_ids(self, mmu):
        a, b = mmu.create_space(), mmu.create_space()
        assert a != b

    def test_destroyed_space_rejected(self, mmu):
        space = mmu.create_space()
        mmu.destroy_space(space)
        with pytest.raises(InvalidOperation):
            mmu.map(space, 0, 0, Prot.READ)

    def test_unknown_space_rejected(self, mmu):
        with pytest.raises(InvalidOperation):
            mmu.translate(999, 0, write=False)

    def test_destroy_drops_translations(self, mmu):
        space = mmu.create_space()
        mmu.map(space, 0, 1, Prot.RW)
        mmu.destroy_space(space)
        space2 = mmu.create_space()
        with pytest.raises(PageFault):
            mmu.translate(space2, 0, write=False)


class TestTranslation:
    def test_unmapped_page_faults(self, mmu):
        space = mmu.create_space()
        with pytest.raises(PageFault) as exc:
            mmu.translate(space, 0x4000, write=False)
        assert exc.value.address == 0x4000

    def test_mapped_page_translates(self, mmu):
        space = mmu.create_space()
        mmu.map(space, 3 * PAGE, 5, Prot.RW)
        paddr = mmu.translate(space, 3 * PAGE + 123, write=True)
        assert paddr == 5 * PAGE + 123

    def test_write_to_readonly_violates(self, mmu):
        space = mmu.create_space()
        mmu.map(space, 0, 2, Prot.READ)
        assert mmu.translate(space, 10, write=False) == 2 * PAGE + 10
        with pytest.raises(ProtectionViolation):
            mmu.translate(space, 10, write=True)

    def test_read_of_writeonly_mapping(self, mmu):
        space = mmu.create_space()
        mmu.map(space, 0, 2, Prot.WRITE)
        with pytest.raises(ProtectionViolation):
            mmu.translate(space, 0, write=False)

    def test_spaces_are_isolated(self, mmu):
        a, b = mmu.create_space(), mmu.create_space()
        mmu.map(a, 0, 1, Prot.RW)
        with pytest.raises(PageFault):
            mmu.translate(b, 0, write=False)


class TestMappingOps:
    def test_map_none_prot_rejected(self, mmu):
        space = mmu.create_space()
        with pytest.raises(InvalidOperation):
            mmu.map(space, 0, 0, Prot.NONE)

    def test_remap_replaces_frame(self, mmu):
        space = mmu.create_space()
        mmu.map(space, 0, 1, Prot.RW)
        mmu.map(space, 0, 7, Prot.RW)
        assert mmu.translate(space, 0, write=False) == 7 * PAGE

    def test_unmap(self, mmu):
        space = mmu.create_space()
        mmu.map(space, PAGE, 1, Prot.RW)
        assert mmu.unmap(space, PAGE) is True
        assert mmu.unmap(space, PAGE) is False
        with pytest.raises(PageFault):
            mmu.translate(space, PAGE, write=False)

    def test_unmap_range_counts(self, mmu):
        space = mmu.create_space()
        for i in range(4):
            mmu.map(space, i * PAGE, i, Prot.RW)
        count = mmu.unmap_range(space, 0, 3 * PAGE)
        assert count == 3
        assert mmu.lookup(space, 3 * PAGE) is not None

    def test_unmap_range_partial_pages(self, mmu):
        space = mmu.create_space()
        mmu.map(space, 0, 0, Prot.RW)
        mmu.map(space, PAGE, 1, Prot.RW)
        # A one-byte range ending inside page 1 still unmaps both pages.
        assert mmu.unmap_range(space, PAGE - 1, 2) == 2

    def test_protect_downgrades(self, mmu):
        space = mmu.create_space()
        mmu.map(space, 0, 1, Prot.RW)
        mmu.protect(space, 0, Prot.READ)
        with pytest.raises(ProtectionViolation):
            mmu.translate(space, 0, write=True)

    def test_protect_upgrade(self, mmu):
        space = mmu.create_space()
        mmu.map(space, 0, 1, Prot.READ)
        mmu.protect(space, 0, Prot.RW)
        assert mmu.translate(space, 0, write=True) == PAGE

    def test_protect_unmapped_rejected(self, mmu):
        space = mmu.create_space()
        with pytest.raises(InvalidOperation):
            mmu.protect(space, 0, Prot.READ)

    def test_mapped_pages_listing(self, mmu):
        space = mmu.create_space()
        mmu.map(space, 0, 9, Prot.READ)
        mmu.map(space, 5 * PAGE, 4, Prot.RW)
        pages = dict(mmu.mapped_pages(space))
        assert set(pages) == {0, 5}
        assert pages[5].frame == 4


class TestSparseAddressing:
    """Section 4.1: structures must not scale with address-space size."""

    def test_huge_sparse_space(self, mmu):
        space = mmu.create_space()
        # Map two pages a gigabyte apart (within every port's reach;
        # the segmented port tops out at its 4 GB descriptor limit).
        far = 1 << 30
        mmu.map(space, 0, 0, Prot.RW)
        mmu.map(space, far, 1, Prot.RW)
        assert mmu.translate(space, far + 5, write=False) == PAGE + 5
        assert len(mmu.mapped_pages(space)) == 2


class TestPortSpecifics:
    def test_paged_allocates_tables_on_demand(self):
        mmu = PagedMMU(page_size=PAGE)
        space = mmu.create_space()
        assert mmu.table_count(space) == 0
        mmu.map(space, 0, 0, Prot.RW)
        assert mmu.table_count(space) == 1
        mmu.unmap(space, 0)
        assert mmu.table_count(space) == 0

    def test_inverted_tracks_residency(self):
        mmu = InvertedMMU(page_size=PAGE)
        a, b = mmu.create_space(), mmu.create_space()
        mmu.map(a, 0, 0, Prot.RW)
        mmu.map(b, 0, 1, Prot.RW)
        assert mmu.resident_entries == 2
        mmu.destroy_space(a)
        assert mmu.resident_entries == 1

    def test_segmented_limit_check(self):
        mmu = SegmentedMMU(page_size=PAGE)
        space = mmu.create_space()
        mmu.set_segment_limit(space, 4 * PAGE)
        mmu.map(space, 0, 0, Prot.RW)
        with pytest.raises(InvalidOperation):
            mmu.map(space, 4 * PAGE, 1, Prot.RW)
        with pytest.raises(PageFault):
            mmu.translate(space, 5 * PAGE, write=False)

    def test_segmented_spaces_have_distinct_linear_bases(self):
        """Virtual/linear confusion cannot hide: each space relocates."""
        mmu = SegmentedMMU(page_size=PAGE)
        a, b = mmu.create_space(), mmu.create_space()
        assert mmu.descriptor_of(a).base != mmu.descriptor_of(b).base
        mmu.map(a, 0, 3, Prot.RW)
        mmu.map(b, 0, 4, Prot.RW)
        assert mmu.translate(a, 1, write=False) == 3 * PAGE + 1
        assert mmu.translate(b, 1, write=False) == 4 * PAGE + 1

    def test_segmented_counts_descriptor_checks(self):
        mmu = SegmentedMMU(page_size=PAGE)
        space = mmu.create_space()
        mmu.map(space, 0, 0, Prot.RW)
        mmu.translate(space, 0, write=False)
        assert mmu.stats.get("descriptor_check") > 0


class TestBatchOps:
    """Bulk primitives the hardware layer builds on: semantics must
    match the single-entry operations exactly, port by port."""

    def test_map_batch_matches_singles(self, mmu):
        batched = mmu.create_space()
        single = mmu.create_space()
        entries = [(index * PAGE, index + 1, Prot.RW) for index in range(6)]
        mmu.map_batch(batched, entries)
        for vaddr, frame, prot in entries:
            mmu.map(single, vaddr, frame, prot)
        for vaddr, frame, _ in entries:
            assert mmu.translate(batched, vaddr + 9, write=True) == \
                mmu.translate(single, vaddr + 9, write=True)

    def test_map_batch_rejects_none_protection(self, mmu):
        space = mmu.create_space()
        with pytest.raises(InvalidOperation):
            mmu.map_batch(space, [(0, 0, Prot.RW), (PAGE, 1, Prot.NONE)])

    def test_unmap_batch_counts_only_existing(self, mmu):
        space = mmu.create_space()
        mmu.map(space, 0, 0, Prot.RW)
        mmu.map(space, 2 * PAGE, 1, Prot.RW)
        dropped = mmu.unmap_batch(space, [0, PAGE, 2 * PAGE, 3 * PAGE])
        assert dropped == 2
        assert mmu.mapped_pages(space) == []

    def test_protect_batch_applies_to_every_entry(self, mmu):
        space = mmu.create_space()
        mmu.map(space, 0, 0, Prot.RW)
        mmu.map(space, PAGE, 1, Prot.RW)
        mmu.protect_batch(space, [(0, Prot.READ), (PAGE, Prot.READ)])
        for vaddr in (0, PAGE):
            with pytest.raises(ProtectionViolation):
                mmu.translate(space, vaddr, write=True)
            mmu.translate(space, vaddr, write=False)

    def test_protect_batch_missing_mapping_is_an_error(self, mmu):
        space = mmu.create_space()
        mmu.map(space, 0, 0, Prot.RW)
        with pytest.raises(InvalidOperation):
            mmu.protect_batch(space, [(0, Prot.READ), (PAGE, Prot.READ)])

    def test_batches_check_the_space(self, mmu):
        with pytest.raises(InvalidOperation):
            mmu.map_batch(999, [(0, 0, Prot.RW)])
        with pytest.raises(InvalidOperation):
            mmu.unmap_batch(999, [0])
        with pytest.raises(InvalidOperation):
            mmu.protect_batch(999, [(0, Prot.READ)])

    def test_space_size_hint_tracks_residency(self, mmu):
        space = mmu.create_space()
        assert mmu._space_size(space) in (0, None)
        mmu.map_batch(space, [(index * PAGE, index, Prot.RW)
                              for index in range(4)])
        size = mmu._space_size(space)
        if size is not None:
            assert size == 4
        mmu.unmap_batch(space, [0, PAGE])
        size = mmu._space_size(space)
        if size is not None:
            assert size == 2

    def test_unmap_range_on_huge_sparse_window(self, mmu):
        """A giant sparse invalidation walks the resident set, not the
        whole window, and still removes exactly the right pages."""
        space = mmu.create_space()
        far = 1 << 30
        mmu.map(space, 0, 0, Prot.RW)
        mmu.map(space, far, 1, Prot.RW)
        mmu.map(space, far + 3 * PAGE, 2, Prot.RW)
        dropped = mmu.unmap_range(space, 0, far + PAGE)
        assert dropped == 2
        assert [vpn for vpn, _ in mmu.mapped_pages(space)] == \
            [(far + 3 * PAGE) // PAGE]

    def test_batch_unmap_invalidates_the_tlb(self):
        from repro.hardware.tlb import TLB
        mmu = PagedMMU(page_size=PAGE, tlb=TLB(16))
        space = mmu.create_space()
        mmu.map(space, 0, 7, Prot.RW)
        mmu.translate(space, 0, write=False)      # prime the TLB
        mmu.unmap_batch(space, [0])
        with pytest.raises(PageFault):
            mmu.translate(space, 0, write=False)

    def test_segmented_map_batch_enforces_the_limit(self):
        mmu = SegmentedMMU(page_size=PAGE)
        space = mmu.create_space()
        mmu.set_segment_limit(space, 2 * PAGE)
        with pytest.raises(InvalidOperation):
            mmu.map_batch(space, [(0, 0, Prot.RW), (2 * PAGE, 1, Prot.RW)])
