"""Unit tests for the vectorized access path (repro.hardware.vbus).

The observational-equivalence property lives in
tests/property/test_vbus_parity.py; these tests pin the seams — input
validation, the numpy/python engine gate, space segmentation, the
classification-cache invalidation after a fault, supervisor
protection, and the dense-table bail-out to the fallback engine.
"""

import pytest

from repro.errors import InvalidOperation, ProtectionViolation
from repro.fastpath import numpy_available
from repro.hardware.bus import MemoryBus
from repro.hardware.mmu import MMU, Prot
from repro.hardware.paged_mmu import PagedMMU
from repro.hardware.physmem import PhysicalMemory
from repro.hardware.tlb import TLB
from repro.hardware.vbus import MAX_DENSE_PAGES, VectorBus
from repro.units import KB

PAGE = 8 * KB

ENGINES = [pytest.param(False, id="python")]
if numpy_available():
    ENGINES.insert(0, pytest.param(True, id="numpy"))


@pytest.fixture
def rig():
    mem = PhysicalMemory(size=256 * KB, page_size=PAGE)
    mmu = PagedMMU(page_size=PAGE, tlb=TLB(entries=4))
    bus = MemoryBus(mem, mmu)
    space = mmu.create_space()
    return mem, mmu, bus, space


def _map_pages(mem, mmu, space, count, prot=Prot.RW, base_vpn=0):
    frames = []
    for index in range(count):
        frame = mem.allocate_frame(zero=True)
        mmu.map(space, (base_vpn + index) * PAGE, frame, prot)
        frames.append(frame)
    return frames


class TestValidation:
    def test_column_length_mismatch_rejected(self, rig):
        _, _, bus, space = rig
        vbus = VectorBus(bus)
        with pytest.raises(InvalidOperation, match="length mismatch"):
            vbus.replay(space, [0, 1, 2], b"\x00\x01")
        with pytest.raises(InvalidOperation, match="length mismatch"):
            vbus.replay(space, [0, 1], b"\x00\x01", spaces=[space])

    def test_empty_trace_is_a_noop(self, rig):
        _, _, bus, space = rig
        vbus = VectorBus(bus)
        assert vbus.replay(space, [], b"") == 0
        assert vbus.stats.get("replays") == 1
        assert vbus.stats.get("fast") == 0

    def test_peekless_mmu_port_rejected(self, rig):
        mem, _, _, _ = rig

        class NoPeekMMU(PagedMMU):
            peek = MMU.peek

        bus = MemoryBus(mem, NoPeekMMU(page_size=PAGE))
        with pytest.raises(InvalidOperation, match="peek"):
            VectorBus(bus)

    def test_port_without_walk_stats_rejected(self, rig):
        mem, _, _, _ = rig

        class NoStatsMMU(PagedMMU):
            walk_stats_mapped = None

        bus = MemoryBus(mem, NoStatsMMU(page_size=PAGE))
        with pytest.raises(InvalidOperation, match="walk_stats_mapped"):
            VectorBus(bus)

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_negative_page_index_rejected(self, rig):
        _, mmu, bus, space = rig
        _map_pages(rig[0], mmu, space, 1)
        vbus = VectorBus(bus, use_numpy=True)
        with pytest.raises(InvalidOperation, match="negative"):
            vbus.replay(space, [0, -3], b"\x00\x00")


class TestEngineGate:
    def test_backend_reports_the_engine(self, rig):
        _, _, bus, _ = rig
        assert VectorBus(bus, use_numpy=False).backend == "python"
        if numpy_available():
            assert VectorBus(bus, use_numpy=True).backend == "numpy"

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_sparse_trace_defers_to_the_fallback(self, rig):
        # A page span wider than the dense-table budget makes the
        # numpy engine bail (return None) and the shared _segment
        # driver finish the job on the dict-cached engine.
        mem, mmu, bus, space = rig
        _map_pages(mem, mmu, space, 1)
        far = MAX_DENSE_PAGES + 7
        _map_pages(mem, mmu, space, 1, base_vpn=far)
        vbus = VectorBus(bus, use_numpy=True)
        pages = [0, far, 0]
        assert vbus._segment_numpy(space, pages, b"\x00\x00\x00",
                                   0, 3, 0, False, b"\x01") is None
        assert vbus.replay(space, pages, b"\x00\x00\x00") == 3
        assert vbus.stats.get("fast") == 3
        assert vbus.stats.get("fallback") == 0


class TestRetirement:
    @pytest.mark.parametrize("use_numpy", ENGINES)
    def test_hits_retire_in_bulk(self, rig, use_numpy):
        mem, mmu, bus, space = rig
        frames = _map_pages(mem, mmu, space, 3)
        vbus = VectorBus(bus, use_numpy=use_numpy)
        done = vbus.replay(space, [0, 1, 2, 1, 0], b"\x01\x00\x01\x00\x00")
        assert done == 5
        assert vbus.stats.get("replays") == 1
        assert vbus.stats.get("fast") == 5
        assert vbus.stats.get("fallback") == 0
        assert bus.stats.get("reads") == 3
        assert bus.stats.get("writes") == 2
        assert mem.read_frame(frames[0])[0] == 1
        assert mem.read_frame(frames[2])[0] == 1
        assert mem.read_frame(frames[1])[0] == 0

    @pytest.mark.parametrize("use_numpy", ENGINES)
    def test_faults_fall_through_in_trace_order(self, rig, use_numpy):
        mem, mmu, bus, space = rig
        faulted = []

        def handler(fault):
            faulted.append(fault.address // PAGE)
            frame = mem.allocate_frame(zero=True)
            mmu.map(space, fault.address - fault.address % PAGE,
                    frame, Prot.RW)

        bus.install_fault_handler(handler)
        vbus = VectorBus(bus, use_numpy=use_numpy)
        done = vbus.replay(space, [2, 0, 2, 1, 0], b"\x01" * 5)
        assert done == 5
        assert faulted == [2, 0, 1]
        assert vbus.stats.get("fallback") == 3
        assert vbus.stats.get("fast") == 2

    @pytest.mark.parametrize("use_numpy", ENGINES)
    def test_classification_cache_dropped_after_fault(self, rig,
                                                      use_numpy):
        # Page 0 starts read-only; the handler upgrades it on the
        # protection fault.  The later write must see the *new*
        # protection, which only works if the fallback invalidated
        # the classification cache.
        mem, mmu, bus, space = rig
        frames = _map_pages(mem, mmu, space, 1, prot=Prot.READ)
        upgrades = []

        def handler(fault):
            upgrades.append(fault.protection_violation)
            mmu.protect(space, 0, Prot.RW)

        bus.install_fault_handler(handler)
        vbus = VectorBus(bus, use_numpy=use_numpy)
        done = vbus.replay(space, [0, 0, 0], b"\x00\x01\x01")
        assert done == 3
        assert upgrades == [True]
        assert vbus.stats.get("fallback") == 1
        assert vbus.stats.get("fast") == 2
        assert mem.read_frame(frames[0])[0] == 1

    @pytest.mark.parametrize("use_numpy", ENGINES)
    def test_supervisor_pages_block_user_replay(self, rig, use_numpy):
        mem, mmu, bus, space = rig
        _map_pages(mem, mmu, space, 1, prot=Prot.RW | Prot.SYSTEM)
        vbus = VectorBus(bus, use_numpy=use_numpy)
        with pytest.raises(ProtectionViolation):
            vbus.replay(space, [0], b"\x00")
        assert vbus.replay(space, [0], b"\x01", supervisor=True) == 1
        assert vbus.stats.get("fast") == 1

    @pytest.mark.parametrize("use_numpy", ENGINES)
    def test_spaces_column_segments_the_replay(self, rig, use_numpy):
        mem, mmu, bus, space_a = rig
        space_b = mmu.create_space()
        frames_a = _map_pages(mem, mmu, space_a, 1)
        frames_b = _map_pages(mem, mmu, space_b, 1)
        vbus = VectorBus(bus, use_numpy=use_numpy)
        done = vbus.replay(None, [0, 0, 0, 0], b"\x01\x01\x01\x00",
                           spaces=[space_a, space_a, space_b, space_b])
        assert done == 4
        assert mem.read_frame(frames_a[0])[0] == 1
        assert mem.read_frame(frames_b[0])[0] == 1
        assert vbus.stats.get("batches") == 2

    @pytest.mark.parametrize("use_numpy", ENGINES)
    def test_tlb_state_matches_scalar_access(self, rig, use_numpy):
        # After a replay of pure hits the TLB holds the same entries
        # in the same LRU order a scalar loop would have left.
        mem, mmu, bus, space = rig
        _map_pages(mem, mmu, space, 3)
        scalar_mmu = PagedMMU(page_size=PAGE, tlb=TLB(entries=4))
        scalar_bus = MemoryBus(PhysicalMemory(size=256 * KB,
                                              page_size=PAGE), scalar_mmu)
        scalar_space = scalar_mmu.create_space()
        _map_pages(scalar_bus.memory, scalar_mmu, scalar_space, 3)
        trace = [0, 1, 2, 0, 1, 0, 2]
        vbus = VectorBus(bus, use_numpy=use_numpy)
        vbus.replay(space, trace, bytes(len(trace)))
        for page in trace:
            scalar_bus.read(scalar_space, page * PAGE, 1)
        ours = [key[1] for key in mmu.tlb._entries]
        theirs = [key[1] for key in scalar_mmu.tlb._entries]
        assert ours == theirs
        assert mmu.tlb.stats.get("hit") == scalar_mmu.tlb.stats.get("hit")
        assert mmu.tlb.stats.get("miss") == scalar_mmu.tlb.stats.get("miss")
