"""Extent-granular TLB behaviour (PR 6).

``invalidate_range`` must drop exactly the live entries the per-page
batch would (same shootdown counts) while costing O(min(count, live));
opt-in run entries (``run_entries > 0``) translate whole contiguous
runs, are conservatively dropped on any overlapping invalidation, and
never change page-granular behaviour when disabled.
"""

from repro.hardware.mmu import Mapping, Prot
from repro.hardware.tlb import TLB


def _fill(tlb, space, vpns, base_frame=100):
    for vpn in vpns:
        tlb.fill(space, vpn, Mapping(base_frame + vpn, Prot.RW))


class TestInvalidateRange:
    def test_drops_only_entries_in_range(self):
        tlb = TLB(16)
        _fill(tlb, 1, [0, 3, 5, 9])
        dropped = tlb.invalidate_range(1, 2, 5)     # vpns [2, 7)
        assert dropped == 2
        assert tlb.probe(1, 3) is None
        assert tlb.probe(1, 5) is None
        assert tlb.probe(1, 0) is not None
        assert tlb.probe(1, 9) is not None

    def test_counts_match_per_page_batch(self):
        ranged, per_page = TLB(16), TLB(16)
        for tlb in (ranged, per_page):
            _fill(tlb, 1, [0, 3, 5, 9])
            _fill(tlb, 2, [4])
        ranged.invalidate_range(1, 0, 10)
        per_page.invalidate_batch(1, range(10))
        assert ranged.stats.get("shootdown") == \
            per_page.stats.get("shootdown") == 4
        assert ranged.occupancy == per_page.occupancy == 1

    def test_million_page_range_touches_only_live_entries(self):
        tlb = TLB(16)
        _fill(tlb, 1, [10, 500, 999_000])
        dropped = tlb.invalidate_range(1, 0, 1_000_000)
        assert dropped == 3
        assert tlb.occupancy == 0

    def test_other_spaces_untouched(self):
        tlb = TLB(16)
        _fill(tlb, 1, [4])
        _fill(tlb, 2, [4])
        tlb.invalidate_range(1, 0, 10)
        assert tlb.probe(2, 4) is not None

    def test_stale_entries_do_not_count(self):
        tlb = TLB(16)
        _fill(tlb, 1, [2, 3])
        tlb.flush_space(1)               # entries become stale, lazily
        assert tlb.invalidate_range(1, 0, 10) == 0


class TestRunEntries:
    def test_run_probe_translates_whole_extent(self):
        tlb = TLB(4, run_entries=4)
        tlb.fill_run(1, 100, 50, 7, Prot.RW)
        hit = tlb.probe(1, 120)
        assert hit is not None and hit.frame == 7 + 20
        assert tlb.stats.get("run_hit") == 1
        assert tlb.probe(1, 150) is None           # one past the run

    def test_overlapping_invalidation_drops_whole_run(self):
        tlb = TLB(4, run_entries=4)
        tlb.fill_run(1, 0, 10, 0, Prot.RW)
        tlb.invalidate(1, 5)                       # conservative drop
        assert tlb.probe(1, 2) is None
        assert tlb.run_occupancy == 0

    def test_fifo_eviction_counts(self):
        tlb = TLB(4, run_entries=2)
        tlb.fill_run(1, 0, 4, 0, Prot.RW)
        tlb.fill_run(1, 10, 4, 10, Prot.RW)
        tlb.fill_run(1, 20, 4, 20, Prot.RW)        # evicts the first
        assert tlb.run_occupancy == 2
        assert tlb.stats.get("run_evict") == 1
        assert tlb.probe(1, 1) is None
        assert tlb.probe(1, 21) is not None

    def test_disabled_by_default(self):
        tlb = TLB(4)
        tlb.fill_run(1, 0, 4, 0, Prot.RW)          # no-op
        assert tlb.run_occupancy == 0
        assert tlb.probe(1, 1) is None
        assert tlb.stats.get("run_hit") == 0

    def test_flush_space_and_flush_drop_runs(self):
        tlb = TLB(4, run_entries=4)
        tlb.fill_run(1, 0, 4, 0, Prot.RW)
        tlb.fill_run(2, 0, 4, 9, Prot.RW)
        tlb.flush_space(1)
        assert tlb.probe(1, 1) is None
        assert tlb.probe(2, 1) is not None
        tlb.flush()
        assert tlb.run_occupancy == 0
