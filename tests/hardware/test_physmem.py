"""Unit tests for the simulated physical memory and frame allocator."""

import pytest

from repro.errors import BusError, InvalidOperation, OutOfFrames
from repro.hardware.physmem import PhysicalMemory
from repro.units import KB


@pytest.fixture
def mem():
    return PhysicalMemory(size=64 * KB, page_size=8 * KB)


class TestConstruction:
    def test_frame_count(self, mem):
        assert mem.total_frames == 8
        assert mem.free_frames == 8
        assert mem.allocated_frames == 0

    def test_page_size_must_be_power_of_two(self):
        with pytest.raises(InvalidOperation):
            PhysicalMemory(size=64 * KB, page_size=3000)

    def test_size_must_be_multiple_of_page_size(self):
        with pytest.raises(InvalidOperation):
            PhysicalMemory(size=12 * KB, page_size=8 * KB)

    def test_zero_size_rejected(self):
        with pytest.raises(InvalidOperation):
            PhysicalMemory(size=0, page_size=8 * KB)


class TestAllocation:
    def test_allocate_returns_distinct_frames(self, mem):
        frames = [mem.allocate_frame() for _ in range(8)]
        assert len(set(frames)) == 8
        assert mem.free_frames == 0

    def test_exhaustion_raises(self, mem):
        for _ in range(8):
            mem.allocate_frame()
        with pytest.raises(OutOfFrames):
            mem.allocate_frame()

    def test_free_recycles(self, mem):
        frame = mem.allocate_frame()
        mem.free_frame(frame)
        assert mem.free_frames == 8
        assert not mem.is_allocated(frame)

    def test_double_free_rejected(self, mem):
        frame = mem.allocate_frame()
        mem.free_frame(frame)
        with pytest.raises(InvalidOperation):
            mem.free_frame(frame)

    def test_free_unallocated_rejected(self, mem):
        with pytest.raises(InvalidOperation):
            mem.free_frame(3)

    def test_allocate_zeroed(self, mem):
        frame = mem.allocate_frame()
        mem.write_frame(frame, b"\xff" * (8 * KB))
        mem.free_frame(frame)
        # Reallocate with zero=True until we get the dirty frame back.
        for _ in range(8):
            again = mem.allocate_frame(zero=True)
            if again == frame:
                assert mem.read_frame(again) == bytes(8 * KB)
                break
        else:
            pytest.fail("dirty frame never reallocated")


class TestAccess:
    def test_read_write_roundtrip(self, mem):
        mem.write(100, b"hello world")
        assert mem.read(100, 11) == b"hello world"

    def test_out_of_range_read(self, mem):
        with pytest.raises(BusError):
            mem.read(64 * KB - 4, 8)

    def test_out_of_range_write(self, mem):
        with pytest.raises(BusError):
            mem.write(64 * KB, b"x")

    def test_negative_address(self, mem):
        with pytest.raises(BusError):
            mem.read(-1, 1)


class TestFrameHelpers:
    def test_frame_address(self, mem):
        assert mem.frame_address(0) == 0
        assert mem.frame_address(3) == 3 * 8 * KB

    def test_frame_address_out_of_range(self, mem):
        with pytest.raises(BusError):
            mem.frame_address(8)

    def test_write_frame_pads_with_zeroes(self, mem):
        frame = mem.allocate_frame()
        mem.write_frame(frame, b"\xaa" * (8 * KB))
        mem.write_frame(frame, b"abc")
        data = mem.read_frame(frame)
        assert data[:3] == b"abc"
        assert data[3:] == bytes(8 * KB - 3)

    def test_write_frame_too_large(self, mem):
        frame = mem.allocate_frame()
        with pytest.raises(InvalidOperation):
            mem.write_frame(frame, b"x" * (8 * KB + 1))

    def test_zero_frame(self, mem):
        frame = mem.allocate_frame()
        mem.write_frame(frame, b"\x55" * (8 * KB))
        mem.zero_frame(frame)
        assert mem.read_frame(frame) == bytes(8 * KB)

    def test_copy_frame(self, mem):
        src = mem.allocate_frame()
        dst = mem.allocate_frame()
        mem.write_frame(src, b"\x42" * (8 * KB))
        mem.copy_frame(src, dst)
        assert mem.read_frame(dst) == b"\x42" * (8 * KB)
        # Source unchanged.
        assert mem.read_frame(src) == b"\x42" * (8 * KB)
