"""Generation-tagged TLB: O(1) space flush, batch shootdowns, parity.

The TLB no longer walks its whole capacity on ``flush_space``: it
bumps the space's generation and reaps stale entries lazily.  These
tests pin the observable contract — counters, occupancy and probe
results must be exactly those of the eager implementation.
"""

import pytest

from repro.hardware.mmu import Mapping, Prot
from repro.hardware.paged_mmu import PagedMMU
from repro.hardware.tlb import TLB
from repro.units import KB

PAGE = 8 * KB


class TestFlushSpaceGenerations:
    def test_flush_space_empties_without_touching_others(self):
        tlb = TLB(entries=8)
        for vpn in range(3):
            tlb.fill(1, vpn, Mapping(vpn, Prot.READ))
        tlb.fill(2, 0, Mapping(9, Prot.READ))
        tlb.flush_space(1)
        assert tlb.occupancy == 1
        assert all(tlb.probe(1, vpn) is None for vpn in range(3))
        assert tlb.probe(2, 0) is not None

    def test_flush_space_counts_once_and_only_when_nonempty(self):
        tlb = TLB(entries=8)
        tlb.flush_space(1)                    # nothing cached: no event
        assert tlb.stats.get("space_flush") == 0
        tlb.fill(1, 0, Mapping(0, Prot.READ))
        tlb.fill(1, 1, Mapping(1, Prot.READ))
        tlb.flush_space(1)
        assert tlb.stats.get("space_flush") == 1

    def test_refill_after_flush_works(self):
        tlb = TLB(entries=4)
        tlb.fill(1, 0, Mapping(0, Prot.READ))
        tlb.flush_space(1)
        tlb.fill(1, 0, Mapping(5, Prot.RW))
        hit = tlb.probe(1, 0)
        assert hit is not None and hit.frame == 5

    def test_stale_entries_do_not_count_as_evictions(self):
        # Fill to capacity, flush the space, then refill: the stale
        # slots are reaped silently — an eager TLB would have empty
        # slots, so no "evict" events may be counted.
        tlb = TLB(entries=4)
        for vpn in range(4):
            tlb.fill(1, vpn, Mapping(vpn, Prot.READ))
        tlb.flush_space(1)
        for vpn in range(4):
            tlb.fill(1, vpn + 10, Mapping(vpn, Prot.READ))
        assert tlb.stats.get("evict") == 0
        assert tlb.occupancy == 4

    def test_capacity_eviction_still_counts_with_stale_entries_present(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 0, Mapping(0, Prot.READ))
        tlb.fill(2, 0, Mapping(1, Prot.READ))
        tlb.flush_space(1)                    # slot 0 now stale
        tlb.fill(2, 1, Mapping(2, Prot.READ))  # takes the stale slot
        assert tlb.stats.get("evict") == 0
        tlb.fill(2, 2, Mapping(3, Prot.READ))  # evicts a live entry
        assert tlb.stats.get("evict") == 1


class TestShootdownParity:
    """Batch invalidations must count exactly like per-page ones."""

    def _loaded(self, entries=32):
        tlb = TLB(entries=entries)
        for vpn in range(8):
            tlb.fill(1, vpn, Mapping(vpn, Prot.RW))
        return tlb

    def test_invalidate_batch_counts_live_drops_only(self):
        batched = self._loaded()
        batched.invalidate_batch(1, list(range(6)) + [100, 200])
        eager = self._loaded()
        for vpn in list(range(6)) + [100, 200]:
            eager.invalidate(1, vpn)
        assert batched.stats.get("shootdown") == \
            eager.stats.get("shootdown") == 6
        assert batched.occupancy == eager.occupancy == 2

    def test_unmap_range_shootdown_parity(self):
        def rig():
            tlb = TLB(entries=16)
            mmu = PagedMMU(page_size=PAGE, tlb=tlb)
            space = mmu.create_space()
            for index in range(8):
                mmu.map(space, index * PAGE, index, Prot.RW)
                mmu.translate(space, index * PAGE, write=False)
            return mmu, tlb, space

        ranged_mmu, ranged_tlb, space = rig()
        ranged_mmu.unmap_range(space, 0, 5 * PAGE)
        eager_mmu, eager_tlb, space2 = rig()
        for index in range(5):
            eager_mmu.unmap(space2, index * PAGE)
        assert ranged_tlb.stats.get("shootdown") == \
            eager_tlb.stats.get("shootdown") == 5
        assert ranged_tlb.occupancy == eager_tlb.occupancy == 3

    def test_protect_batch_shootdown_parity(self):
        def rig():
            tlb = TLB(entries=16)
            mmu = PagedMMU(page_size=PAGE, tlb=tlb)
            space = mmu.create_space()
            for index in range(4):
                mmu.map(space, index * PAGE, index, Prot.RW)
                mmu.translate(space, index * PAGE, write=True)
            return mmu, tlb, space

        batch_mmu, batch_tlb, space = rig()
        batch_mmu.protect_batch(
            space, [(index * PAGE, Prot.READ) for index in range(4)])
        eager_mmu, eager_tlb, space2 = rig()
        for index in range(4):
            eager_mmu.protect(space2, index * PAGE, Prot.READ)
        assert batch_tlb.stats.get("shootdown") == \
            eager_tlb.stats.get("shootdown") == 4
        # Either way the stale RW entries must be gone.
        for index in range(4):
            assert batch_tlb.probe(space, index) is None


class TestTranslateBatch:
    @pytest.fixture
    def rig(self):
        tlb = TLB(entries=8)
        mmu = PagedMMU(page_size=PAGE, tlb=tlb)
        space = mmu.create_space()
        for index in range(4):
            mmu.map(space, index * PAGE, 10 + index, Prot.RW)
        return mmu, tlb, space

    def test_matches_per_address_translate(self, rig):
        mmu, tlb, space = rig
        vaddrs = [index * PAGE + 17 for index in range(4)]
        batch = mmu.translate_batch(space, vaddrs, write=False)
        singles = [mmu.translate(space, vaddr, write=False)
                   for vaddr in vaddrs]
        assert batch == singles

    def test_fills_tlb_like_singles(self, rig):
        mmu, tlb, space = rig
        vaddrs = [index * PAGE for index in range(4)]
        mmu.translate_batch(space, vaddrs, write=False)
        assert tlb.stats.get("miss") == 4
        mmu.translate_batch(space, vaddrs, write=False)
        assert tlb.stats.get("hit") == 4

    def test_raises_at_first_offender(self, rig):
        from repro.errors import PageFault, ProtectionViolation

        mmu, tlb, space = rig
        with pytest.raises(PageFault):
            mmu.translate_batch(space, [0, 100 * PAGE], write=False)
        mmu.protect(space, 2 * PAGE, Prot.READ)
        with pytest.raises(ProtectionViolation):
            mmu.translate_batch(space, [0, 2 * PAGE], write=True)
