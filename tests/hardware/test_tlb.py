"""Unit tests for the TLB model and its integration with the MMU."""

import pytest

from repro.errors import PageFault, ProtectionViolation
from repro.hardware.mmu import Mapping, Prot
from repro.hardware.paged_mmu import PagedMMU
from repro.hardware.tlb import TLB
from repro.units import KB

PAGE = 8 * KB


class TestTLBStandalone:
    def test_miss_then_hit(self):
        tlb = TLB(entries=4)
        assert tlb.probe(1, 0) is None
        tlb.fill(1, 0, Mapping(7, Prot.RW))
        hit = tlb.probe(1, 0)
        assert hit is not None and hit.frame == 7
        assert tlb.stats.get("hit") == 1
        assert tlb.stats.get("miss") == 1

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 0, Mapping(0, Prot.READ))
        tlb.fill(1, 1, Mapping(1, Prot.READ))
        tlb.probe(1, 0)                      # page 0 now most recent
        tlb.fill(1, 2, Mapping(2, Prot.READ))  # evicts page 1
        assert tlb.probe(1, 1) is None
        assert tlb.probe(1, 0) is not None

    def test_invalidate(self):
        tlb = TLB(entries=4)
        tlb.fill(1, 0, Mapping(0, Prot.READ))
        tlb.invalidate(1, 0)
        assert tlb.probe(1, 0) is None

    def test_flush_space_is_selective(self):
        tlb = TLB(entries=8)
        tlb.fill(1, 0, Mapping(0, Prot.READ))
        tlb.fill(2, 0, Mapping(1, Prot.READ))
        tlb.flush_space(1)
        assert tlb.probe(1, 0) is None
        assert tlb.probe(2, 0) is not None

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TLB(entries=0)

    def test_hit_rate(self):
        tlb = TLB(entries=4)
        tlb.probe(1, 0)
        tlb.fill(1, 0, Mapping(0, Prot.READ))
        tlb.probe(1, 0)
        assert tlb.hit_rate() == pytest.approx(0.5)


class TestTLBWithMMU:
    @pytest.fixture
    def rig(self):
        tlb = TLB(entries=4)
        mmu = PagedMMU(page_size=PAGE, tlb=tlb)
        space = mmu.create_space()
        return mmu, tlb, space

    def test_translate_fills_tlb(self, rig):
        mmu, tlb, space = rig
        mmu.map(space, 0, 3, Prot.RW)
        mmu.translate(space, 0, write=False)      # miss, fill
        mmu.translate(space, 10, write=False)     # hit
        assert tlb.stats.get("hit") == 1

    def test_protect_shoots_down_stale_entry(self, rig):
        """A stale TLB entry must never let a write bypass a downgrade."""
        mmu, tlb, space = rig
        mmu.map(space, 0, 3, Prot.RW)
        mmu.translate(space, 0, write=True)       # cached as RW
        mmu.protect(space, 0, Prot.READ)
        with pytest.raises(ProtectionViolation):
            mmu.translate(space, 0, write=True)

    def test_unmap_shoots_down(self, rig):
        mmu, tlb, space = rig
        mmu.map(space, 0, 3, Prot.RW)
        mmu.translate(space, 0, write=False)
        mmu.unmap(space, 0)
        with pytest.raises(PageFault):
            mmu.translate(space, 0, write=False)

    def test_destroy_space_flushes(self, rig):
        mmu, tlb, space = rig
        mmu.map(space, 0, 3, Prot.RW)
        mmu.translate(space, 0, write=False)
        mmu.destroy_space(space)
        assert tlb.occupancy == 0
