"""The compressed-memory pager behind the GMI."""

import random

import pytest

from repro.gmi.types import Protection
from repro.kernel.clock import VirtualClock
from repro.pvm import PagedVirtualMemory
from repro.segments.compressed import CompressedSwapProvider
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def vm():
    return PagedVirtualMemory(memory_size=8 * PAGE)       # tiny RAM


class TestRoundtrips:
    def test_evicted_pages_come_back_intact(self, vm):
        provider = CompressedSwapProvider()
        cache = vm.cache_create(provider)
        for index in range(16):                           # 2x RAM
            cache.write(index * PAGE, bytes([index + 1]) * 100)
        assert provider.compressions > 0
        for index in range(16):
            assert cache.read(index * PAGE, 100) == \
                bytes([index + 1]) * 100
        assert provider.decompressions > 0

    def test_random_content_roundtrip(self, vm):
        rng = random.Random(42)
        provider = CompressedSwapProvider()
        cache = vm.cache_create(provider)
        blobs = {}
        for index in range(12):
            blob = bytes(rng.randrange(256) for _ in range(256))
            blobs[index] = blob
            cache.write(index * PAGE, blob)
        for index, blob in blobs.items():
            assert cache.read(index * PAGE, 256) == blob

    def test_mapped_access_through_compressed_swap(self, vm):
        provider = CompressedSwapProvider()
        cache = vm.cache_create(provider)
        ctx = vm.context_create()
        ctx.region_create(0x100000, 16 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        for index in range(16):
            vm.user_write(ctx, 0x100000 + index * PAGE,
                          f"page {index}".encode())
        for index in range(16):
            expected = f"page {index}".encode()
            assert vm.user_read(ctx, 0x100000 + index * PAGE,
                                len(expected)) == expected


class TestCompressionAccounting:
    def test_repetitive_pages_compress_well(self, vm):
        provider = CompressedSwapProvider()
        cache = vm.cache_create(provider)
        for index in range(12):
            cache.write(index * PAGE, b"A" * PAGE)
        cache.read(11 * PAGE, 1)       # force more churn
        assert provider.compression_ratio > 20

    def test_stored_bytes_below_raw(self, vm):
        provider = CompressedSwapProvider()
        cache = vm.cache_create(provider)
        for index in range(12):
            cache.write(index * PAGE, bytes([index]) * PAGE)
        assert 0 < provider.stored_bytes < provider.stored_pages * PAGE

    def test_codec_time_charged(self):
        clock = VirtualClock()
        vm = PagedVirtualMemory(memory_size=8 * PAGE, clock=clock)
        provider = CompressedSwapProvider(clock=clock,
                                          compress_ms_per_kb=0.1,
                                          decompress_ms_per_kb=0.05)
        cache = vm.cache_create(provider)
        before = clock.now()
        for index in range(16):
            cache.write(index * PAGE, bytes([index + 1]) * PAGE)
        assert clock.now() > before        # compression time visible


class TestDropInCompatibility:
    def test_history_copies_over_compressed_swap(self, vm):
        from repro.gmi.interface import CopyPolicy
        provider = CompressedSwapProvider()
        src = vm.cache_create(provider, name="src")
        src.write(0, b"compressible original")
        dst = vm.cache_create(CompressedSwapProvider(), name="dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        src.write(0, b"source changed")
        # Thrash everything through the compressed store.
        filler = vm.cache_create(CompressedSwapProvider(), name="fill")
        for index in range(10):
            filler.write(index * PAGE, b"f" * 64)
        assert dst.read(0, 21) == b"compressible original"
        assert src.read(0, 14) == b"source changed"
