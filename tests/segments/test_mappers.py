"""Unit tests for capabilities, the disk model and the mappers."""

import pytest

from repro.errors import CapabilityError, InvalidOperation
from repro.kernel.clock import CostEvent, VirtualClock
from repro.segments import (
    Capability, DiskMapper, MemoryMapper, SimulatedDisk, SwapMapper,
)
from repro.units import KB

PAGE = 8 * KB


class TestCapability:
    def test_keys_are_sparse_and_unique(self):
        keys = {Capability("p").key for _ in range(1000)}
        assert len(keys) == 1000

    def test_uid_stable(self):
        cap = Capability("mapper", key=0x1234)
        assert cap.uid == "mapper:0000000000001234"

    def test_frozen(self):
        cap = Capability("p")
        with pytest.raises(AttributeError):
            cap.key = 5


class TestSimulatedDisk:
    def test_read_unwritten_block_is_zero(self):
        disk = SimulatedDisk(PAGE)
        assert disk.read_block(5) == bytes(PAGE)

    def test_write_read_roundtrip(self):
        disk = SimulatedDisk(PAGE)
        disk.write_block(3, b"abc")
        data = disk.read_block(3)
        assert data[:3] == b"abc" and len(data) == PAGE

    def test_oversized_write_rejected(self):
        disk = SimulatedDisk(PAGE)
        with pytest.raises(InvalidOperation):
            disk.write_block(0, b"x" * (PAGE + 1))

    def test_latency_charged(self):
        clock = VirtualClock()
        disk = SimulatedDisk(PAGE, clock=clock, seek_ms=20, transfer_ms=4)
        disk.read_block(0)
        assert clock.now() == pytest.approx(24.0)
        # Sequential read: no seek.
        disk.read_block(1)
        assert clock.now() == pytest.approx(28.0)
        # Random read: seek again.
        disk.read_block(10)
        assert clock.now() == pytest.approx(52.0)
        assert clock.count(CostEvent.DISK_READ_PAGE) == 3


class TestMemoryMapper:
    def test_register_and_read(self):
        mapper = MemoryMapper()
        cap = mapper.register(b"hello world")
        assert mapper.read_segment(cap.key, 0, 5) == b"hello"

    def test_read_past_eof_zero_padded(self):
        mapper = MemoryMapper()
        cap = mapper.register(b"abc")
        assert mapper.read_segment(cap.key, 0, 6) == b"abc\x00\x00\x00"

    def test_write_extends(self):
        mapper = MemoryMapper()
        cap = mapper.register(b"")
        mapper.write_segment(cap.key, 10, b"xy")
        assert mapper.segment_size(cap.key) == 12
        assert mapper.read_segment(cap.key, 10, 2) == b"xy"

    def test_unknown_key_rejected(self):
        mapper = MemoryMapper()
        with pytest.raises(CapabilityError):
            mapper.read_segment(999, 0, 1)

    def test_wrong_port_capability_rejected(self):
        mapper = MemoryMapper()
        with pytest.raises(CapabilityError):
            mapper.check_capability(Capability("other-port"))

    def test_not_a_default_mapper(self):
        with pytest.raises(CapabilityError):
            MemoryMapper().create_temporary()


class TestSwapMapper:
    def test_temporary_lifecycle(self):
        mapper = SwapMapper()
        cap = mapper.create_temporary()
        assert mapper.segment_size(cap.key) == 0
        mapper.write_segment(cap.key, PAGE, b"\x01" * PAGE)
        assert mapper.segment_size(cap.key) == 2 * PAGE
        assert mapper.read_segment(cap.key, PAGE, 4) == b"\x01" * 4
        mapper.destroy_segment(cap.key)
        assert mapper.live_segments == 0

    def test_unwritten_pages_read_zero(self):
        mapper = SwapMapper()
        cap = mapper.create_temporary()
        assert mapper.read_segment(cap.key, 0, 8) == bytes(8)


class TestDiskMapper:
    @pytest.fixture
    def rig(self):
        clock = VirtualClock()
        disk = SimulatedDisk(PAGE, clock=clock)
        return clock, disk, DiskMapper(disk)

    def test_file_roundtrip(self, rig):
        clock, disk, mapper = rig
        payload = bytes(range(256)) * 64           # 16 KB
        cap = mapper.create_file(payload)
        assert mapper.read_segment(cap.key, 0, len(payload)) == payload
        assert mapper.segment_size(cap.key) == len(payload)

    def test_reads_pay_disk_latency(self, rig):
        clock, disk, mapper = rig
        cap = mapper.create_file(b"x" * PAGE)
        before = clock.now()
        mapper.read_segment(cap.key, 0, PAGE)
        assert clock.now() > before

    def test_partial_page_write_preserves_rest(self, rig):
        clock, disk, mapper = rig
        cap = mapper.create_file(b"A" * PAGE)
        mapper.write_segment(cap.key, 100, b"BB")
        data = mapper.read_segment(cap.key, 0, PAGE)
        assert data[99:103] == b"ABBA"

    def test_sparse_holes_read_zero(self, rig):
        clock, disk, mapper = rig
        cap = mapper.create_file(b"")
        mapper.write_segment(cap.key, 4 * PAGE, b"\x07" * PAGE)
        assert mapper.read_segment(cap.key, 0, 4) == bytes(4)
        assert mapper.read_segment(cap.key, 4 * PAGE, 2) == b"\x07\x07"
