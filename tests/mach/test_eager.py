"""Eager-copy baseline behaviour."""

import pytest

from repro.gmi.interface import CopyPolicy
from repro.gmi.upcalls import ZeroFillProvider
from repro.kernel.clock import CostEvent
from repro.mach import EagerVirtualMemory
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def vm():
    return EagerVirtualMemory(memory_size=4 * MB)


class TestEagerCopies:
    def test_copy_is_immediate(self, vm):
        src = vm.cache_create(ZeroFillProvider(), name="src")
        src.write(0, b"now")
        dst = vm.cache_create(ZeroFillProvider(), name="dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        # Data copied physically: a private page exists right away.
        assert 0 in dst.pages
        assert dst.pages[0].frame != src.pages[0].frame
        assert dst.read(0, 3) == b"now"

    def test_no_deferral_machinery(self, vm):
        src = vm.cache_create(ZeroFillProvider(), name="src")
        for page in range(4):
            src.write(page * PAGE, b"x")
        dst = vm.cache_create(ZeroFillProvider(), name="dst")
        src.copy(0, dst, 0, 4 * PAGE, policy=CopyPolicy.AUTO)
        assert len(dst.parents) == 0
        assert vm.clock.count(CostEvent.COW_STUB_INSERT) == 0
        assert vm.clock.count(CostEvent.SHADOW_CREATE) == 0
        assert vm.clock.count(CostEvent.HISTORY_TREE_SETUP) == 0

    def test_bcopy_charged_per_page(self, vm):
        src = vm.cache_create(ZeroFillProvider(), name="src")
        for page in range(4):
            src.write(page * PAGE, b"x")
        before = vm.clock.count(CostEvent.BCOPY_PAGE)
        dst = vm.cache_create(ZeroFillProvider(), name="dst")
        src.copy(0, dst, 0, 4 * PAGE)
        assert vm.clock.count(CostEvent.BCOPY_PAGE) - before >= 4

    def test_source_changes_invisible_to_copy(self, vm):
        src = vm.cache_create(ZeroFillProvider(), name="src")
        src.write(0, b"original")
        dst = vm.cache_create(ZeroFillProvider(), name="dst")
        src.copy(0, dst, 0, PAGE)
        src.write(0, b"mutated!")
        assert dst.read(0, 8) == b"original"
