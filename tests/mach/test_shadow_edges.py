"""Shadow-object baseline: windows, swap, and GC edge cases."""

import pytest

from repro.gmi.interface import CopyPolicy
from repro.gmi.upcalls import ZeroFillProvider
from repro.mach import MachVirtualMemory
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def vm():
    return MachVirtualMemory(memory_size=4 * MB, auto_merge=True)


def make(vm, name, fill=None, pages=4):
    cache = vm.cache_create(ZeroFillProvider(), name=name)
    if fill is not None:
        for page in range(pages):
            cache.write(page * PAGE, bytes([fill + page]) * PAGE)
    return cache


class TestWindowedShadowCopy:
    def test_offset_shifted_copy(self, vm):
        src = make(vm, "src", fill=1)
        dst = make(vm, "dst")
        src.copy(2 * PAGE, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        assert dst.read(0, 2) == bytes([3, 3])
        assert dst.read(PAGE, 2) == bytes([4, 4])
        src.write(2 * PAGE, b"mutated")
        assert dst.read(0, 2) == bytes([3, 3])

    def test_partial_fragment_copy_leaves_rest_alone(self, vm):
        src = make(vm, "src", fill=10)
        dst = make(vm, "dst")
        src.copy(PAGE, dst, PAGE, PAGE, policy=CopyPolicy.HISTORY)
        # Only the copied fragment sank into an original object.
        assert 0 in src.pages                  # untouched page stayed
        assert PAGE not in src.pages           # copied page sank
        assert src.read(0, 2) == bytes([10, 10])
        assert src.read(PAGE, 2) == bytes([11, 11])
        assert dst.read(PAGE, 2) == bytes([11, 11])


class TestSwapInteraction:
    def test_shadow_copy_of_evicted_source(self, vm):
        src = make(vm, "src", fill=20, pages=2)
        src.flush(0, 2 * PAGE)
        dst = make(vm, "dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        assert dst.read(0, 2) == bytes([20, 20])
        src.write(0, b"src change")
        assert dst.read(0, 2) == bytes([20, 20])

    def test_original_object_pages_swap_roundtrip(self, vm):
        src = make(vm, "src", fill=30, pages=2)
        dst = make(vm, "dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        original = src.ancestry(0)[0]
        # Evict the original object's pages to its swap segment.
        vm.cache_flush(original, 0, 2 * PAGE, keep=False)
        assert len(original.pages) == 0
        assert dst.read(0, 2) == bytes([30, 30])
        assert src.read(PAGE, 2) == bytes([31, 31])


class TestMergeEdges:
    def test_merge_preserves_top_modifications(self, vm):
        src = make(vm, "src", fill=40, pages=2)
        dst = make(vm, "dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        src.write(0, b"top version")
        dst.destroy()                          # triggers auto-merge
        assert vm.chain_depth(src) == 0
        assert src.read(0, 11) == b"top version"
        assert src.read(PAGE, 2) == bytes([41, 41])

    def test_merge_of_swapped_interior_pages(self, vm):
        src = make(vm, "src", fill=50, pages=2)
        dst = make(vm, "dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        original = src.ancestry(0)[0]
        vm.cache_flush(original, 0, 2 * PAGE, keep=False)
        dst.destroy()
        # Merge pulled the swapped pages back for the survivor.
        assert src.read(0, 2) == bytes([50, 50])
        assert src.read(PAGE, 2) == bytes([51, 51])

    def test_no_merge_while_two_children_live(self, vm):
        src = make(vm, "src", fill=60)
        a, b = make(vm, "a"), make(vm, "b")
        src.copy(0, a, 0, PAGE, policy=CopyPolicy.HISTORY)
        src.copy(0, b, 0, PAGE, policy=CopyPolicy.HISTORY)
        depth_before = vm.chain_depth(src)
        a.destroy()
        # b still depends on the interiors; chains cannot fully merge
        # into src while a sibling lives.
        assert b.read(0, 2) == bytes([60, 60])
        assert src.read(0, 2) == bytes([60, 60])


class TestMachMove:
    def test_move_works_through_shadow_chains(self, vm):
        src = make(vm, "src", fill=70)
        dst = make(vm, "dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        sink = make(vm, "sink")
        dst.move(0, sink, 0, PAGE)
        assert sink.read(0, 2) == bytes([70, 70])
