"""Shadow-object baseline: semantics and the 4.2.5 pathologies."""

import pytest

from repro.gmi.interface import CopyPolicy
from repro.gmi.upcalls import ZeroFillProvider
from repro.kernel.clock import CostEvent
from repro.mach import MachVirtualMemory
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def vm():
    return MachVirtualMemory(memory_size=4 * MB, auto_merge=False)


@pytest.fixture
def gcvm():
    return MachVirtualMemory(memory_size=4 * MB, auto_merge=True)


def make(vm, name, fill=None, pages=3):
    cache = vm.cache_create(ZeroFillProvider(), name=name)
    if fill is not None:
        for page in range(pages):
            cache.write(page * PAGE, bytes([fill + page]) * PAGE)
    return cache


def shadow_copy(src, dst, pages=3):
    src.copy(0, dst, 0, pages * PAGE, policy=CopyPolicy.HISTORY)


class TestBasicShadowCopy:
    def test_copy_isolates_source_and_destination(self, vm):
        src = make(vm, "src", fill=1)
        dst = make(vm, "dst")
        shadow_copy(src, dst)
        src.write(0, b"src change")
        dst.write(PAGE, b"dst change")
        assert dst.read(0, 2) == bytes([1, 1])
        assert src.read(PAGE, 2) == bytes([2, 2])
        assert src.read(0, 10) == b"src change"
        assert dst.read(PAGE, 10) == b"dst change"

    def test_original_pages_stay_in_original_object(self, vm):
        """Unlike history objects: the source's pages sink into an
        immutable original; the source cache becomes an empty shadow."""
        src = make(vm, "src", fill=1)
        dst = make(vm, "dst")
        shadow_copy(src, dst)
        assert len(src.pages) == 0             # all pages sank
        original = src.ancestry(0)[0]
        assert len(original.pages) == 3
        assert original.is_history

    def test_two_shadow_creations_charged(self, vm):
        src = make(vm, "src", fill=1)
        dst = make(vm, "dst")
        shadow_copy(src, dst)
        assert vm.clock.count(CostEvent.SHADOW_CREATE) == 2

    def test_lookups_charged_as_shadow_hops(self, vm):
        src = make(vm, "src", fill=1)
        dst = make(vm, "dst")
        shadow_copy(src, dst)
        dst.read(0, 1)
        assert vm.clock.count(CostEvent.SHADOW_LOOKUP) > 0
        assert vm.clock.count(CostEvent.HISTORY_LOOKUP) == 0

    def test_source_write_copies_into_top(self, vm):
        """A source write allocates in the source's (empty) top —
        original page value survives below for the copy."""
        src = make(vm, "src", fill=5)
        dst = make(vm, "dst")
        shadow_copy(src, dst)
        src.write(0, b"fresh")
        assert 0 in src.pages                  # private page in the top
        assert dst.read(0, 2) == bytes([5, 5])

    def test_per_page_policy_also_uses_shadows(self, vm):
        """Mach has one deferral mechanism for all sizes."""
        src = make(vm, "src", fill=5)
        dst = make(vm, "dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.PER_PAGE)
        assert vm.clock.count(CostEvent.SHADOW_CREATE) == 2
        assert vm.clock.count(CostEvent.COW_STUB_INSERT) == 0

    def test_mapped_access_through_chain(self, vm):
        from repro.gmi.types import Protection
        src = make(vm, "src", fill=9)
        dst = make(vm, "dst")
        shadow_copy(src, dst)
        ctx = vm.context_create()
        ctx.region_create(0x40000, 3 * PAGE, protection=Protection.RW,
                          cache=dst, offset=0)
        assert vm.user_read(ctx, 0x40000, 2) == bytes([9, 9])
        vm.user_write(ctx, 0x40000, b"mapped")
        assert src.read(0, 2) == bytes([9, 9])


class TestChainGrowth:
    """Pathology 1: repeated fork with parent modification grows the
    chain; state disperses across the original and its shadows."""

    def fork_exit_loop(self, vm, src, generations):
        for generation in range(generations):
            child = make(vm, f"child{generation}")
            shadow_copy(src, child)
            src.write(0, bytes([generation + 100]) * 4)
            child.destroy()

    def test_chain_grows_without_gc(self, vm):
        src = make(vm, "src", fill=1)
        self.fork_exit_loop(vm, src, 5)
        assert vm.chain_depth(src) == 5    # one interior object per fork

    def test_data_correct_despite_chain(self, vm):
        src = make(vm, "src", fill=1)
        self.fork_exit_loop(vm, src, 5)
        assert src.read(0, 4) == bytes([104]) * 4
        assert src.read(PAGE, 1) == bytes([2])
        assert src.read(2 * PAGE, 1) == bytes([3])

    def test_gc_keeps_chain_flat(self, gcvm):
        src = make(gcvm, "src", fill=1)
        self.fork_exit_loop(gcvm, src, 5)
        assert gcvm.chain_depth(src) <= 1
        assert src.read(0, 4) == bytes([104]) * 4
        assert src.read(PAGE, 1) == bytes([2])

    def test_gc_pays_merge_cost(self, gcvm):
        src = make(gcvm, "src", fill=1)
        self.fork_exit_loop(gcvm, src, 5)
        assert gcvm.clock.count(CostEvent.SHADOW_MERGE_PAGE) > 0

    def test_explicit_merge_pass(self, vm):
        src = make(vm, "src", fill=1)
        self.fork_exit_loop(vm, src, 4)
        assert vm.chain_depth(src) == 4
        vm.merge_chains(src)
        assert vm.chain_depth(src) == 0
        assert src.read(0, 4) == bytes([103]) * 4
        assert src.read(2 * PAGE, 1) == bytes([3])

    def test_lookup_cost_scales_with_depth(self, vm):
        """The measurable symptom: deep chains make misses expensive."""
        src = make(vm, "src", fill=1)
        self.fork_exit_loop(vm, src, 8)
        before = vm.clock.count(CostEvent.SHADOW_LOOKUP)
        src.read(2 * PAGE, 1)      # never modified: lives at the bottom
        hops = vm.clock.count(CostEvent.SHADOW_LOOKUP) - before
        assert hops >= 8


class TestSiblingFork:
    def test_two_live_copies_share_original(self, vm):
        src = make(vm, "src", fill=1)
        a, b = make(vm, "a"), make(vm, "b")
        shadow_copy(src, a)
        shadow_copy(src, b)
        a.write(0, b"A")
        b.write(0, b"B")
        assert src.read(0, 1) == bytes([1])
        assert a.read(0, 1) == b"A"
        assert b.read(0, 1) == b"B"
        assert a.read(PAGE, 1) == bytes([2])
        assert b.read(PAGE, 1) == bytes([2])

    def test_child_exit_then_parent_exit(self, gcvm):
        src = make(gcvm, "src", fill=1)
        child = make(gcvm, "child")
        shadow_copy(src, child)
        child.write(0, b"c")
        child.destroy()
        src.destroy()
        # Everything reapable is gone.
        assert all(cache.destroyed or not cache.is_history
                   for cache in gcvm.caches())

    def test_parent_exit_first_keeps_data_for_child(self, gcvm):
        src = make(gcvm, "src", fill=7)
        child = make(gcvm, "child")
        shadow_copy(src, child)
        src.destroy()
        assert child.read(0, 2) == bytes([7, 7])
        assert child.read(2 * PAGE, 1) == bytes([9])
