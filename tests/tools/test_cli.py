"""The command-line toolbox."""

import pytest

from repro.tools.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SOSP 1989" in out
        assert "pvm" in out

    def test_loc(self, capsys):
        assert main(["loc"]) == 0
        out = capsys.readouterr().out
        assert "PVM: machine-independent" in out
        assert "machine-dependent share" in out

    def test_figure3(self, capsys):
        assert main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "w(src)" in out
        assert "cpy3" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 6 / Chorus" in out
        assert "Table 7 / Mach" in out
        assert "cow_overhead_per_page_ms" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
