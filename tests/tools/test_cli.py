"""The command-line toolbox."""

import pytest

from repro.tools.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SOSP 1989" in out
        assert "pvm" in out

    def test_loc(self, capsys):
        assert main(["loc"]) == 0
        out = capsys.readouterr().out
        assert "PVM: machine-independent" in out
        assert "machine-dependent share" in out

    def test_figure3(self, capsys):
        assert main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "w(src)" in out
        assert "cpy3" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 6 / Chorus" in out
        assert "Table 7 / Mach" in out
        assert "cow_overhead_per_page_ms" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestVerify:
    def test_verify_gate_passes(self, capsys):
        # The one-stop CI gate: layer contract, obs-schema drift check,
        # live snapshot validation and the bench regression gate must
        # all hold on a clean tree.  Best-of-3 repeats and a loose
        # wall-time threshold keep it deterministic on shared CI
        # machines (a single repeat dies to one host preemption — a
        # 15 ms steal on a 1 ms cell reads as 15x); the layer/schema
        # legs and the virtual-time columns are exact regardless.
        assert main(["verify", "--repeats", "3", "--threshold", "8.0"]) == 0
        out = capsys.readouterr().out
        assert "layer contract" in out
        assert "verify ok" in out
