"""The ``obs-dump`` CLI command and its JSON contract."""

import json
import pathlib

import pytest

from repro.obs.schema import SNAPSHOT_SCHEMA, validate
from repro.tools.cli import main

SCHEMA_FILE = pathlib.Path(__file__).resolve().parents[2] \
    / "docs" / "obs_snapshot.schema.json"


class TestObsDump:
    @pytest.mark.parametrize("backend", ["pvm", "mach", "minimal"])
    def test_emits_valid_snapshot(self, capsys, backend):
        assert main(["obs-dump", "--backend", backend]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        checked_in = json.loads(SCHEMA_FILE.read_text())
        assert validate(snapshot, checked_in) == []
        assert snapshot["meta"]["virtual_ms"] >= 0
        # Every backend reports the workload's zero-fills and copies
        # through the same counters.
        assert snapshot["counters"]["bzero_page"] >= 4
        assert snapshot["counters"]["bcopy_page"] >= 1
        # ... and resolves its pages through the staged engine.  The
        # minimal backend never hardware-faults (regions are eager), so
        # its tasks enter the pipeline past `locate`.
        stages = ("authorize", "resolve", "materialize", "install") \
            if backend == "minimal" \
            else ("locate", "authorize", "resolve", "materialize",
                  "install")
        for stage in stages:
            assert snapshot["counters"][f"engine.stage.{stage}"] >= 1

    def test_pvm_dump_includes_spans_and_fault_counts(self, capsys):
        main(["obs-dump"])
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["fault.write"] >= 4
        assert snapshot["histograms"]["span.fault.resolve.ms"]["count"] >= 4

    def test_checked_in_schema_matches_source(self):
        assert json.loads(SCHEMA_FILE.read_text()) == json.loads(
            json.dumps(SNAPSHOT_SCHEMA))


class TestObsDumpWorkloads:
    def test_named_bench_workload_runs(self, capsys):
        assert main(["obs-dump", "--workload", "pageout"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert validate(snapshot, SNAPSHOT_SCHEMA) == []
        # The sink attaches after setup, so the snapshot covers the
        # measured body: the pageout workload's evictions.
        assert snapshot["counters"]["pageout.evicted"] == 32

    def test_unknown_workload_rejected(self, capsys):
        assert main(["obs-dump", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_workload_backend_mismatch_rejected(self, capsys):
        assert main(["obs-dump", "--workload", "dsm_ping_pong",
                     "--backend", "minimal"]) == 2
        assert "does not run on" in capsys.readouterr().err


class TestObsDumpTraceExport:
    def test_trace_out_round_trips_and_preserves_nesting(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main(["obs-dump", "--trace-out", str(trace_path)]) == 0
        document = json.loads(trace_path.read_text())
        events = document["traceEvents"]
        virtual = [event for event in events
                   if event.get("pid") == 1 and event["ph"] in ("B", "E")]
        assert virtual, "no duration events exported"
        # B/E pairs balance, and args carry the span identity the
        # JSONL sink exposes (id / parent / depth / events).
        depth = 0
        for event in virtual:
            depth += 1 if event["ph"] == "B" else -1
            assert depth >= 0
        assert depth == 0
        by_name = {}
        for event in virtual:
            if event["ph"] == "B":
                by_name.setdefault(event["name"], event)
        fault = by_name["fault.resolve"]
        stage = by_name["engine.stage.materialize"]
        assert stage["args"]["parent"] == fault["args"]["id"]
        assert stage["args"]["depth"] == fault["args"]["depth"] + 1
        assert fault["args"]["event.fault_dispatch"] >= 1

    def test_stacks_out_writes_weighted_paths(self, tmp_path):
        stacks_path = tmp_path / "stacks.txt"
        assert main(["obs-dump", "--stacks-out", str(stacks_path)]) == 0
        lines = stacks_path.read_text().splitlines()
        assert lines
        assert any(line.startswith("fault.resolve;engine.stage.")
                   for line in lines)
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and int(weight) >= 0

    def test_default_dump_unchanged_by_new_flags(self, capsys):
        # No --workload/--trace-out/--stacks-out: byte-identical
        # canonical behavior (deterministic virtual clock).
        assert main(["obs-dump"]) == 0
        first = capsys.readouterr().out
        assert main(["obs-dump"]) == 0
        assert capsys.readouterr().out == first
