"""The ``obs-dump`` CLI command and its JSON contract."""

import json
import pathlib

import pytest

from repro.obs.schema import SNAPSHOT_SCHEMA, validate
from repro.tools.cli import main

SCHEMA_FILE = pathlib.Path(__file__).resolve().parents[2] \
    / "docs" / "obs_snapshot.schema.json"


class TestObsDump:
    @pytest.mark.parametrize("backend", ["pvm", "mach", "minimal"])
    def test_emits_valid_snapshot(self, capsys, backend):
        assert main(["obs-dump", "--backend", backend]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        checked_in = json.loads(SCHEMA_FILE.read_text())
        assert validate(snapshot, checked_in) == []
        assert snapshot["meta"]["virtual_ms"] >= 0
        # Every backend reports the workload's zero-fills and copies
        # through the same counters.
        assert snapshot["counters"]["bzero_page"] >= 4
        assert snapshot["counters"]["bcopy_page"] >= 1
        # ... and resolves its pages through the staged engine.  The
        # minimal backend never hardware-faults (regions are eager), so
        # its tasks enter the pipeline past `locate`.
        stages = ("authorize", "resolve", "materialize", "install") \
            if backend == "minimal" \
            else ("locate", "authorize", "resolve", "materialize",
                  "install")
        for stage in stages:
            assert snapshot["counters"][f"engine.stage.{stage}"] >= 1

    def test_pvm_dump_includes_spans_and_fault_counts(self, capsys):
        main(["obs-dump"])
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["fault.write"] >= 4
        assert snapshot["histograms"]["span.fault.resolve.ms"]["count"] >= 4

    def test_checked_in_schema_matches_source(self):
        assert json.loads(SCHEMA_FILE.read_text()) == json.loads(
            json.dumps(SNAPSHOT_SCHEMA))
