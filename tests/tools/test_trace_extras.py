"""EventTrace time-window queries and nested usage."""

import pytest

from repro.kernel.clock import CostEvent, CostModel, VirtualClock
from repro.tools import EventTrace


@pytest.fixture
def clock():
    return VirtualClock(CostModel({
        CostEvent.BCOPY_PAGE: 1.0,
        CostEvent.BZERO_PAGE: 0.5,
    }))


class TestBetween:
    def test_window_selects_by_timestamp(self, clock):
        with EventTrace(clock) as trace:
            clock.charge(CostEvent.BCOPY_PAGE)      # t=0.0 -> 1.0
            clock.charge(CostEvent.BZERO_PAGE)      # t=1.0 -> 1.5
            clock.charge(CostEvent.BCOPY_PAGE)      # t=1.5 -> 2.5
        window = trace.between(0.5, 1.6)
        assert [record.event for record in window] == \
            [CostEvent.BZERO_PAGE, CostEvent.BCOPY_PAGE]

    def test_empty_window(self, clock):
        with EventTrace(clock) as trace:
            clock.charge(CostEvent.BCOPY_PAGE)
        assert trace.between(5.0, 9.0) == []


class TestNesting:
    def test_nested_traces_both_record(self, clock):
        with EventTrace(clock) as outer:
            clock.charge(CostEvent.BCOPY_PAGE)
            with EventTrace(clock) as inner:
                clock.charge(CostEvent.BZERO_PAGE)
            clock.charge(CostEvent.BCOPY_PAGE)
        assert len(inner.records) == 1
        assert len(outer.records) == 3

    def test_time_still_advances_under_trace(self, clock):
        with EventTrace(clock):
            clock.charge(CostEvent.BCOPY_PAGE, 3)
        assert clock.now() == pytest.approx(3.0)


class TestFormat:
    def test_truncation_notice(self, clock):
        with EventTrace(clock) as trace:
            for _ in range(60):
                clock.charge(CostEvent.BCOPY_PAGE)
        text = trace.format(limit=10)
        assert "50 more" in text

    def test_counts_collapsed_in_records(self, clock):
        with EventTrace(clock) as trace:
            clock.charge(CostEvent.BCOPY_PAGE, 5)
        assert len(trace.records) == 1
        assert trace.records[0].count == 5
        assert trace.histogram()[CostEvent.BCOPY_PAGE] == 5
        assert "x5" in trace.format()
