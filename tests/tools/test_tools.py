"""Introspection tools: tree rendering, state dumps, tracing, vmstat."""

import pytest

from repro.gmi.interface import CopyPolicy
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.kernel.clock import CostEvent
from repro.pvm import PagedVirtualMemory
from repro.tools import (
    EventTrace, VmStat, dump_vm_state, render_cache_tree, render_context,
)
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def vm():
    return PagedVirtualMemory(memory_size=4 * MB)


def build_figure_3c(vm):
    src = vm.cache_create(ZeroFillProvider(), name="src")
    for page in range(4):
        src.write(page * PAGE, bytes([page + 1]) * 8)
    copies = []
    for name in ("cpy1", "cpy2"):
        copy = vm.cache_create(ZeroFillProvider(), name=name)
        src.copy(0, copy, 0, 4 * PAGE, policy=CopyPolicy.HISTORY)
        copies.append(copy)
    return src, copies


class TestRenderCacheTree:
    def test_tree_shows_all_nodes(self, vm):
        src, copies = build_figure_3c(vm)
        art = render_cache_tree(src)
        for name in ("src", "cpy1", "cpy2", "w(src)"):
            assert name in art

    def test_tree_shows_history_flag_and_guards(self, vm):
        src, copies = build_figure_3c(vm)
        art = render_cache_tree(copies[0])       # render from a leaf
        assert "(history)" in art
        assert "guards" in art and "->w(src)" in art

    def test_dead_nodes_flagged(self, vm):
        src, copies = build_figure_3c(vm)
        src.destroy()
        art = render_cache_tree(copies[0])
        assert "(dead)" in art

    def test_page_listing(self, vm):
        src, copies = build_figure_3c(vm)
        src.write(2 * PAGE, b"dirty")             # pre-image into w(src)
        art = render_cache_tree(src)
        assert "pages:{0,1,2,3}" in art            # src resident pages


class TestRenderContext:
    def test_region_lines(self, vm):
        ctx = vm.context_create("demo")
        cache = vm.cache_create(ZeroFillProvider(), name="seg")
        region = ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=PAGE)
        vm.user_write(ctx, 0x40000, b"x")
        text = render_context(ctx)
        assert "demo" in text
        assert "0x00040000" in text
        assert "seg" in text
        assert "resident=1" in text

    def test_locked_marker(self, vm):
        ctx = vm.context_create()
        cache = vm.cache_create(ZeroFillProvider())
        region = ctx.region_create(0x40000, PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        region.lock_in_memory()
        assert "LOCKED" in render_context(ctx)


class TestDumpVmState:
    def test_counts_reported(self, vm):
        src, copies = build_figure_3c(vm)
        text = dump_vm_state(vm)
        assert "memory manager: pvm" in text
        assert "resident pages: 4" in text
        assert "caches: 4" in text and "1 internal" in text

    def test_stub_census(self, vm):
        src = vm.cache_create(ZeroFillProvider(), name="s")
        src.write(0, b"x")
        dst = vm.cache_create(ZeroFillProvider(), name="d")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.PER_PAGE)
        assert "1 cow" in dump_vm_state(vm)


class TestEventTrace:
    def test_records_in_order_with_timestamps(self, vm):
        with EventTrace(vm.clock) as trace:
            cache = vm.cache_create(ZeroFillProvider())
            cache.write(0, b"x")
        events = trace.events()
        assert CostEvent.CACHE_CREATE in events
        assert CostEvent.FRAME_ALLOC in events
        assert events.index(CostEvent.CACHE_CREATE) < \
            events.index(CostEvent.FRAME_ALLOC)

    def test_filtering(self, vm):
        with EventTrace(vm.clock, only={CostEvent.BZERO_PAGE}) as trace:
            cache = vm.cache_create(ZeroFillProvider())
            cache.write(0, b"x")
        assert trace.events() == [CostEvent.BZERO_PAGE]

    def test_detach_stops_recording(self, vm):
        trace = EventTrace(vm.clock)
        trace.detach()
        vm.cache_create(ZeroFillProvider())
        assert trace.records == []

    def test_histogram_and_format(self, vm):
        with EventTrace(vm.clock) as trace:
            cache = vm.cache_create(ZeroFillProvider())
            cache.write(0, b"x")
            cache.write(PAGE, b"y")
        histogram = trace.histogram()
        assert histogram[CostEvent.FRAME_ALLOC] == 2
        assert "frame_alloc" in trace.format()

    def test_counting_still_works_while_traced(self, vm):
        with EventTrace(vm.clock):
            cache = vm.cache_create(ZeroFillProvider())
            cache.write(0, b"x")
        assert vm.clock.count(CostEvent.FRAME_ALLOC) == 1


class TestVmStat:
    def test_interval_deltas(self, vm):
        stat = VmStat(vm)
        cache = vm.cache_create(ZeroFillProvider())
        cache.write(0, b"phase one")
        one = stat.sample("phase1")
        cache.write(PAGE, b"phase two")
        cache.write(2 * PAGE, b"more")
        two = stat.sample("phase2")
        assert one.deltas["alloc"] == 1
        assert two.deltas["alloc"] == 2
        assert one.resident == 1 and two.resident == 3

    def test_format_contains_labels(self, vm):
        stat = VmStat(vm)
        stat.sample("warm-up")
        text = stat.format()
        assert "warm-up" in text
        assert "faults" in text
