"""Residency accounting: RSS/PSS attribution across contexts."""

import pytest

from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.pvm import PagedVirtualMemory
from repro.tools.rss import format_residency, residency_report
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def vm():
    return PagedVirtualMemory(memory_size=4 * MB)


class TestResidency:
    def test_private_pages_counted_once(self, vm):
        ctx = vm.context_create("solo")
        cache = vm.cache_create(ZeroFillProvider())
        ctx.region_create(0x40000, 4 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        vm.user_write(ctx, 0x40000, b"a")
        vm.user_write(ctx, 0x40000 + PAGE, b"b")
        report = residency_report(vm)[0]
        assert report.name == "solo"
        assert report.rss_pages == 2
        assert report.pss_pages == pytest.approx(2.0)

    def test_shared_frame_split_in_pss(self, vm):
        cache = vm.cache_create(ZeroFillProvider(), name="shared")
        cache.write(0, b"x")
        contexts = [vm.context_create(f"c{i}") for i in range(2)]
        for ctx in contexts:
            ctx.region_create(0x40000, PAGE, protection=Protection.RW,
                              cache=cache, offset=0)
            vm.user_read(ctx, 0x40000, 1)
        reports = {r.name: r for r in residency_report(vm)}
        for name in ("c0", "c1"):
            assert reports[name].rss_pages == 1
            assert reports[name].pss_pages == pytest.approx(0.5)

    def test_untouched_regions_are_free(self, vm):
        ctx = vm.context_create("lazy")
        cache = vm.cache_create(ZeroFillProvider())
        ctx.region_create(0x40000, 128 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        report = residency_report(vm)[0]
        assert report.rss_pages == 0

    def test_sorted_by_rss(self, vm):
        cache = vm.cache_create(ZeroFillProvider())
        big = vm.context_create("big")
        big.region_create(0x40000, 4 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        small = vm.context_create("small")
        small.region_create(0x40000, 4 * PAGE, protection=Protection.RW,
                            cache=cache, offset=4 * PAGE)
        for index in range(3):
            vm.user_write(big, 0x40000 + index * PAGE, b"x")
        vm.user_write(small, 0x40000, b"y")
        reports = residency_report(vm)
        assert [r.name for r in reports] == ["big", "small"]

    def test_format_contains_everything(self, vm):
        ctx = vm.context_create("fmt")
        cache = vm.cache_create(ZeroFillProvider(), name="seg")
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        vm.user_write(ctx, 0x40000, b"z")
        text = format_residency(vm)
        assert "fmt" in text and "seg" in text and "rss" in text
