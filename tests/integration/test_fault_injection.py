"""Fault injection: failing mappers must not corrupt the memory
manager's state (no orphan stubs, no leaked frames, clean retries)."""

import pytest

from repro.errors import MapperError, OutOfFrames
from repro.gmi.types import AccessMode, Protection
from repro.gmi.upcalls import SegmentProvider
from repro.pvm import PagedVirtualMemory
from repro.pvm.page import SyncStub
from repro.units import KB, MB

PAGE = 8 * KB


class FlakyProvider(SegmentProvider):
    """Fails the first *failures* pullIns, then serves normally."""

    def __init__(self, failures=1, pattern=b"\x5A"):
        self.failures = failures
        self.pattern = pattern
        self.attempts = 0

    def pull_in(self, cache, offset, size, access_mode):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise MapperError("mapper temporarily unavailable")
        cache.fill_up(offset, self.pattern * size)

    def push_out(self, cache, offset, size):
        cache.copy_back(offset, size)

    def segment_create(self, cache):
        return "flaky"


@pytest.fixture
def vm():
    return PagedVirtualMemory(memory_size=2 * MB)


class TestFlakyMapper:
    def test_failure_propagates_cleanly(self, vm):
        provider = FlakyProvider()
        cache = vm.cache_create(provider)
        with pytest.raises(MapperError):
            cache.read(0, 4)
        # No stub left behind, no page, no leaked frame.
        assert vm.global_map.lookup(cache, 0) is None
        assert len(cache.pages) == 0
        assert vm.memory.allocated_frames == 0

    def test_retry_after_failure_succeeds(self, vm):
        provider = FlakyProvider(failures=1)
        cache = vm.cache_create(provider)
        with pytest.raises(MapperError):
            cache.read(0, 4)
        assert cache.read(0, 4) == b"\x5A" * 4
        assert provider.attempts == 2

    def test_mapped_access_failure_then_retry(self, vm):
        provider = FlakyProvider(failures=1)
        cache = vm.cache_create(provider)
        ctx = vm.context_create()
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        with pytest.raises(MapperError):
            vm.user_read(ctx, 0x40000, 1)
        assert vm.user_read(ctx, 0x40000, 1) == b"\x5A"

    def test_failure_under_deferred_copy(self, vm):
        """A copy whose ancestor pull fails must stay consistent."""
        from repro.gmi.interface import CopyPolicy
        provider = FlakyProvider(failures=1)
        src = vm.cache_create(provider, name="src")
        dst = vm.cache_create(FlakyProvider(failures=0), name="dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        with pytest.raises(MapperError):
            dst.read(0, 4)                # walks to src, whose pull fails
        assert dst.read(0, 4) == b"\x5A" * 4


class TestMemoryExhaustionRecovery:
    def test_oom_during_fill_is_recoverable(self):
        vm = PagedVirtualMemory(memory_size=4 * PAGE)
        cache = vm.cache_create(FlakyProvider(failures=0))
        ctx = vm.context_create()
        region = ctx.region_create(0x40000, 4 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        region.lock_in_memory()             # all RAM pinned
        other = vm.cache_create(FlakyProvider(failures=0))
        with pytest.raises(OutOfFrames):
            other.read(0, 1)
        assert vm.global_map.lookup(other, 0) is None
        region.unlock()
        vm.reclaim_frames(2)
        assert other.read(0, 1) == b"\x5A"

    def test_no_sync_stub_survives_any_failure(self, vm):
        provider = FlakyProvider(failures=3)
        cache = vm.cache_create(provider)
        for _ in range(3):
            with pytest.raises(MapperError):
                cache.read(0, 1)
        stubs = [entry for _, entry in vm.global_map
                 if isinstance(entry, SyncStub)]
        assert stubs == []
        assert cache.read(0, 1) == b"\x5A"
