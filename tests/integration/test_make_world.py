"""The everything-at-once scenario: a miniature "make world".

One site, 1.5 MB of RAM, a disk-backed toolchain, a make process that
forks pipelines of tools which communicate over pipes, read and write
files through descriptors, grow their heaps, and exit — with memory
pressure forcing paging the whole way.  Then the same world runs on
the Mach-style baseline and must produce the same bytes.
"""

import pytest

from repro.kernel.clock import CostEvent
from repro.mach import MachVirtualMemory
from repro.mix import FileTable, Pipe, ProcessManager, ProgramStore
from repro.mix.program import Program
from repro.nucleus import Nucleus
from repro.segments import DiskMapper, SimulatedDisk
from repro.units import KB, MB

PAGE = 8 * KB


def build_world(vm_class):
    nucleus = Nucleus(vm_class=vm_class, memory_size=1536 * KB)
    disk = SimulatedDisk(PAGE, clock=nucleus.clock)
    mapper = DiskMapper(disk)
    nucleus.register_mapper(mapper)
    store = ProgramStore(mapper, PAGE)
    store.install("make", text=b"MAKE" * 1024, data=b"RULES" * 512)
    store.install("cc", text=b"CC" * 8192, data=b"\x00" * (96 * KB))
    store.install("ld", text=b"LD" * 4096, data=b"\x00" * (32 * KB))
    manager = ProcessManager(nucleus, store)
    files = FileTable(nucleus)
    return nucleus, disk, mapper, manager, files


def run_world(vm_class, units=4):
    nucleus, disk, mapper, manager, files = build_world(vm_class)
    make = manager.spawn("make")

    # Source files on disk.
    sources = {}
    for unit in range(units):
        body = (f"int unit{unit}() {{ return {unit}; }}\n" * 40).encode()
        sources[unit] = mapper.create_file(body)

    objects = []
    for unit in range(units):
        compiler = make.fork()
        compiler.exec("cc")
        # Read the source through a descriptor.
        fd = files.open(sources[unit])
        source = files.read(fd, files.fstat_size(fd))
        files.close(fd)
        # "Compile": fill a heap buffer with a transform, stream it to
        # the linker stage through a pipe.
        heap = compiler.sbrk(64 * KB)
        compiler.write(heap, source[:4 * KB])
        pipe = Pipe(nucleus)
        pipe.write(bytes([unit + 1]) * 256 + compiler.read(heap, 64))
        objects.append(pipe.read(320))
        pipe.close()
        compiler.exit(0)
        manager.wait(make)

    # "Link": concatenate objects into an output file.
    linker = make.fork()
    linker.exec("ld")
    output = mapper.create_file(b"")
    fd = files.open(output)
    for blob in objects:
        files.write(fd, blob)
    files.fsync(fd)
    size = files.fstat_size(fd)
    files.close(fd)
    linker.exit(0)
    manager.wait(make)
    make.exit(0)

    final = mapper.read_segment(output.key, 0, size)
    return nucleus, final


class TestMakeWorld:
    def test_world_builds_and_pages(self):
        from repro import PagedVirtualMemory
        nucleus, final = run_world(PagedVirtualMemory)
        # The output is exactly the concatenation of all units' blobs.
        assert len(final) == 4 * 320
        for unit in range(4):
            chunk = final[unit * 320:(unit + 1) * 320]
            assert chunk[:256] == bytes([unit + 1]) * 256
        # Memory pressure really happened.
        assert nucleus.clock.count(CostEvent.PUSH_OUT) > 0
        # Deferred copies really happened (forks).
        assert nucleus.clock.count(CostEvent.HISTORY_TREE_SETUP) > 0
        # Everything was torn down.
        assert len(nucleus.actors) == 0

    def test_same_world_on_shadow_objects(self):
        from repro import PagedVirtualMemory
        _, pvm_result = run_world(PagedVirtualMemory)
        nucleus, mach_result = run_world(MachVirtualMemory)
        assert mach_result == pvm_result
        assert nucleus.clock.count(CostEvent.SHADOW_CREATE) > 0

    def test_world_is_deterministic(self):
        from repro import PagedVirtualMemory
        first_nucleus, first = run_world(PagedVirtualMemory)
        second_nucleus, second = run_world(PagedVirtualMemory)
        assert first == second
        assert first_nucleus.clock.snapshot() == \
            second_nucleus.clock.snapshot()
