"""The GMI's replaceable-unit claim, tested directly.

"The MM implementation is the only difference between these Nucleus
versions.  All the other Nucleus components, which access memory
management facilities via the GMI, are unaffected" (section 5.2).

The same Nucleus / IPC / Chorus-MIX scenarios run, byte-for-byte
identical in observable behaviour, over all four memory managers in
this repository.
"""

import pytest

from repro.mach import EagerVirtualMemory, MachVirtualMemory
from repro.minimal import RealTimeVirtualMemory
from repro.mix import Pipe, ProcessManager, ProgramStore
from repro.mix.program import Program
from repro.nucleus import Nucleus
from repro.pvm import PagedVirtualMemory
from repro.segments import MemoryMapper
from repro.units import KB, MB

PAGE = 8 * KB

ALL_VMS = [PagedVirtualMemory, MachVirtualMemory, EagerVirtualMemory,
           RealTimeVirtualMemory]


@pytest.fixture(params=ALL_VMS,
                ids=["pvm", "mach-shadow", "eager", "minimal-rt"])
def nucleus(request):
    return Nucleus(vm_class=request.param, memory_size=8 * MB)


class TestNucleusScenario:
    def test_rgn_ops_identical_semantics(self, nucleus):
        mapper = MemoryMapper()
        nucleus.register_mapper(mapper)
        cap = mapper.register(b"image bytes " * 1024)
        actor = nucleus.create_actor()
        nucleus.rgn_map(actor, cap, 2 * PAGE, address=0x40000)
        assert actor.read(0x40000, 11) == b"image bytes"
        region = nucleus.rgn_allocate(actor, 2 * PAGE, address=0x80000)
        actor.write(0x80000, b"anon")
        assert actor.read(0x80000, 4) == b"anon"
        nucleus.rgn_free(actor, region)
        nucleus.destroy_actor(actor)

    def test_copy_semantics_identical(self, nucleus):
        actor = nucleus.create_actor()
        nucleus.rgn_allocate(actor, 4 * PAGE, address=0x40000)
        actor.write(0x40000, b"source v1")
        other = nucleus.create_actor()
        nucleus.rgn_init_from_actor(other, actor, 0x40000, address=0x40000)
        actor.write(0x40000, b"source v2")
        other.write(0x40000 + PAGE, b"copy-side")
        assert other.read(0x40000, 9) == b"source v1"
        assert actor.read(0x40000, 9) == b"source v2"
        assert actor.read(0x40000 + PAGE, 9) == bytes(9)

    def test_ipc_identical(self, nucleus):
        actor = nucleus.create_actor()
        nucleus.rgn_allocate(actor, 2 * PAGE, address=0x40000)
        actor.write(0x40000, b"ipc payload")
        cache = actor.mappings[0].cache
        nucleus.ipc.create_port("x")
        nucleus.ipc.send("x", src_cache=cache, src_offset=0, size=PAGE)
        message = nucleus.ipc.receive("x")
        assert message.inline[:11] == b"ipc payload"


class TestMixScenario:
    @pytest.fixture
    def manager(self, nucleus):
        mapper = MemoryMapper()
        nucleus.register_mapper(mapper)
        store = ProgramStore(mapper, nucleus.vm.page_size)
        store.install("init", text=b"INIT" * 512, data=b"CONF" * 4096)
        return ProcessManager(nucleus, store)

    def test_fork_exec_pipeline(self, nucleus, manager):
        init = manager.spawn("init")
        init.write(Program.DATA_BASE, b"parent!")
        results = []
        for worker_id in range(3):
            child = init.fork()
            assert child.read(Program.DATA_BASE, 7) == b"parent!"
            child.write(Program.DATA_BASE, f"work-{worker_id}".encode())
            results.append(child.read(Program.DATA_BASE, 6))
            child.exit(0)
            manager.wait(init)
        assert results == [b"work-0", b"work-1", b"work-2"]
        assert init.read(Program.DATA_BASE, 7) == b"parent!"

    def test_pipes_between_processes(self, nucleus, manager):
        producer = manager.spawn("init")
        consumer = producer.fork()
        pipe = Pipe(nucleus)
        pipe.write(b"0123456789" * 100)
        assert pipe.read(1000) == b"0123456789" * 100
        pipe.close()


class TestMmuPortGenericity:
    """The same full stack over all three MMU ports (section 5.2's
    porting claim at integration level)."""

    @pytest.mark.parametrize("mmu_class_name",
                             ["PagedMMU", "InvertedMMU", "SegmentedMMU"])
    def test_mix_scenario_on_each_port(self, mmu_class_name):
        import repro.hardware as hardware
        mmu_class = getattr(hardware, mmu_class_name)
        nucleus = Nucleus(memory_size=8 * MB,
                          mmu=mmu_class(page_size=PAGE))
        mapper = MemoryMapper()
        nucleus.register_mapper(mapper)
        store = ProgramStore(mapper, PAGE)
        store.install("app", text=b"APP!" * 512, data=b"DATA" * 4096)
        manager = ProcessManager(nucleus, store)
        parent = manager.spawn("app")
        parent.write(Program.DATA_BASE, b"ported")
        child = parent.fork()
        child.write(Program.DATA_BASE, b"child!")
        assert parent.read(Program.DATA_BASE, 6) == b"ported"
        assert child.read(Program.DATA_BASE, 6) == b"child!"
        child.exit(0)
        parent.exit(0)


class TestObservableEquivalence:
    """Run one scripted scenario on every MM; all transcripts match."""

    def transcript(self, vm_class):
        nucleus = Nucleus(vm_class=vm_class, memory_size=8 * MB)
        actor = nucleus.create_actor()
        log = []
        nucleus.rgn_allocate(actor, 4 * PAGE, address=0x40000)
        actor.write(0x40000 + 100, b"alpha")
        log.append(actor.read(0x40000 + 100, 5))
        other = nucleus.create_actor()
        nucleus.rgn_init_from_actor(other, actor, 0x40000, address=0x90000)
        other.write(0x90000 + 100, b"omega")
        log.append(actor.read(0x40000 + 100, 5))
        log.append(other.read(0x90000 + 100, 5))
        actor.write(0x40000 + PAGE, b"late write")
        log.append(other.read(0x90000 + PAGE, 10))
        nucleus.destroy_actor(other)
        log.append(actor.read(0x40000 + 100, 5))
        return log

    def test_all_managers_agree(self):
        transcripts = {vm.name: self.transcript(vm) for vm in ALL_VMS}
        reference = transcripts["pvm"]
        for name, log in transcripts.items():
            assert log == reference, f"{name} diverged: {log}"
