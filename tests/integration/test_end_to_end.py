"""Full-stack stress scenarios: disk-backed processes under memory
pressure, with pipes, sbrk growth and segment caching all at once."""

import pytest

from repro.kernel.clock import CostEvent
from repro.mix import Pipe, ProcessManager, ProgramStore
from repro.mix.program import Program
from repro.nucleus import Nucleus
from repro.segments import DiskMapper, MemoryMapper, SimulatedDisk
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def small_site():
    """A site with only 1 MB of RAM: paging is unavoidable."""
    return Nucleus(memory_size=1 * MB)


class TestPagingUnderPressure:
    def test_processes_bigger_than_ram(self, small_site):
        nucleus = small_site
        mapper = MemoryMapper()
        nucleus.register_mapper(mapper)
        store = ProgramStore(mapper, PAGE)
        store.install("hog", text=b"HOG!" * 512, data=b"\x00" * (768 * KB))
        manager = ProcessManager(nucleus, store)
        hog = manager.spawn("hog")
        # Touch 96 data pages (768 KB) plus stack in 1 MB of RAM: the
        # pageout daemon must run, and every byte must survive it.
        for index in range(96):
            hog.write(Program.DATA_BASE + index * PAGE,
                      bytes([index % 251 + 1]) * 32)
        assert nucleus.clock.count(CostEvent.PUSH_OUT) > 0
        for index in range(96):
            assert hog.read(Program.DATA_BASE + index * PAGE, 32) == \
                bytes([index % 251 + 1]) * 32

    def test_fork_of_large_process_under_pressure(self, small_site):
        nucleus = small_site
        mapper = MemoryMapper()
        nucleus.register_mapper(mapper)
        store = ProgramStore(mapper, PAGE)
        store.install("big", text=b"BIG!" * 256, data=b"\x00" * (384 * KB))
        manager = ProcessManager(nucleus, store)
        parent = manager.spawn("big")
        for index in range(48):
            parent.write(Program.DATA_BASE + index * PAGE,
                         bytes([index + 1]) * 16)
        child = parent.fork()
        # Dirty half the pages on each side, interleaved.
        for index in range(0, 48, 2):
            parent.write(Program.DATA_BASE + index * PAGE, b"P")
            child.write(Program.DATA_BASE + (index + 1) * PAGE, b"C")
        for index in range(0, 48, 2):
            assert child.read(Program.DATA_BASE + index * PAGE, 1) == \
                bytes([index + 1])
            assert parent.read(
                Program.DATA_BASE + (index + 1) * PAGE, 1) == \
                bytes([index + 2])
        child.exit(0)
        # Parent's state intact after the child unwinds.
        assert parent.read(Program.DATA_BASE, 1) == b"P"


class TestDiskBackedEndToEnd:
    def test_make_run_on_slow_disk(self):
        nucleus = Nucleus(memory_size=2 * MB)
        disk = SimulatedDisk(PAGE, clock=nucleus.clock)
        mapper = DiskMapper(disk)
        nucleus.register_mapper(mapper)
        store = ProgramStore(mapper, PAGE)
        store.install("tool", text=b"TOOL" * 4096, data=b"D" * (16 * KB))
        manager = ProcessManager(nucleus, store)
        times = []
        for _ in range(3):
            start = nucleus.clock.now()
            process = manager.spawn("tool")
            process.read(Program.TEXT_BASE, 4)
            process.write(Program.DATA_BASE, b"run")
            process.exit(0)
            times.append(nucleus.clock.now() - start)
        # First run pays the disk; later runs ride the warm segment
        # cache.
        assert times[1] < times[0] / 2
        assert times[2] < times[0] / 2

    def test_file_write_read_through_cache(self):
        """Unified cache for a disk file: write through the mapped
        cache, flush, re-read from disk."""
        nucleus = Nucleus(memory_size=2 * MB)
        disk = SimulatedDisk(PAGE, clock=nucleus.clock)
        mapper = DiskMapper(disk)
        nucleus.register_mapper(mapper)
        cap = mapper.create_file(b"old contents" + bytes(PAGE))
        cache = nucleus.segment_manager.bind(cap)
        assert cache.read(0, 12) == b"old contents"
        cache.write(0, b"new contents")
        cache.flush(0, PAGE)
        # The file itself changed.
        assert mapper.read_segment(cap.key, 0, 12) == b"new contents"


class TestMixedWorkload:
    def test_pipeline_with_growth_and_pressure(self, small_site):
        nucleus = small_site
        mapper = MemoryMapper()
        nucleus.register_mapper(mapper)
        store = ProgramStore(mapper, PAGE)
        store.install("stage", text=b"ST" * 512, data=b"\x00" * (64 * KB))
        manager = ProcessManager(nucleus, store)

        producer = manager.spawn("stage")
        consumer = producer.fork()
        pipe = Pipe(nucleus)
        # Producer grows its heap, fills it, streams it to the consumer.
        heap = producer.sbrk(128 * KB)
        for index in range(16):
            producer.write(heap + index * PAGE, bytes([index + 10]) * 64)
        for index in range(16):
            pipe.write(producer.read(heap + index * PAGE, 64))
        received = pipe.read(16 * 64)
        assert len(received) == 16 * 64
        for index in range(16):
            assert received[index * 64:(index + 1) * 64] == \
                bytes([index + 10]) * 64
        consumer.exit(0)
        producer.exit(0)
        assert manager.live_processes() == 0
