"""The write-back daemon driven from a kernel thread: two Nucleus
facilities composed (threads + the pageout machinery)."""

import pytest

from repro.gmi.upcalls import ZeroFillProvider
from repro.kernel.clock import CostEvent
from repro.nucleus import Nucleus
from repro.nucleus.threads import Scheduler
from repro.cache.writeback import WritebackDaemon
from repro.units import KB, MB

PAGE = 8 * KB


def test_daemon_as_kernel_thread():
    nucleus = Nucleus(memory_size=2 * MB)
    scheduler = Scheduler(nucleus)
    daemon = WritebackDaemon(nucleus.vm, age_threshold=1, batch_limit=8)
    cache = nucleus.vm.cache_create(ZeroFillProvider())

    def mutator():
        for round_index in range(6):
            for index in range(4):
                cache.write(index * PAGE,
                            bytes([round_index * 4 + index + 1]) * 16)
            yield                            # preemption point

    def writeback_thread():
        # Runs interleaved with the mutator, one tick per slice.
        for _ in range(8):
            daemon.tick()
            yield

    scheduler.spawn(mutator, name="mutator")
    scheduler.spawn(writeback_thread, name="bdflush")
    scheduler.run()

    # The daemon cleaned pages while the mutator ran.
    assert daemon.pages_cleaned > 0
    # Final state: last round's values, recoverable from the provider.
    for index in range(4):
        expected = bytes([5 * 4 + index + 1]) * 16
        assert cache.read(index * PAGE, 16) == expected
    cache.sync(0, 4 * PAGE)
    cache.invalidate(0, 4 * PAGE)
    for index in range(4):
        expected = bytes([5 * 4 + index + 1]) * 16
        assert cache.read(index * PAGE, 16) == expected


def test_interleaving_is_deterministic():
    def run_once():
        nucleus = Nucleus(memory_size=2 * MB)
        scheduler = Scheduler(nucleus)
        daemon = WritebackDaemon(nucleus.vm, age_threshold=1)
        cache = nucleus.vm.cache_create(ZeroFillProvider())
        log = []

        def mutator():
            for index in range(4):
                cache.write(index * PAGE, bytes([index + 1]))
                log.append(("write", index))
                yield

        def ticker():
            for _ in range(4):
                cleaned = daemon.tick()
                log.append(("tick", cleaned))
                yield

        scheduler.spawn(mutator)
        scheduler.spawn(ticker)
        scheduler.run()
        return log, nucleus.clock.snapshot()

    assert run_once() == run_once()
