"""Concurrency: many threads against one PVM (the host-sync contract).

Section 2: the host kernel provides "a simple synchronization
interface, to allow concurrent Memory Management operations".  With
ThreadedSync installed, parallel faulting, copying and flushing must
never corrupt data or deadlock.
"""

import threading

import pytest

from repro.gmi.interface import CopyPolicy
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.kernel.sync import ThreadedSync
from repro.pvm import PagedVirtualMemory
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def vm():
    return PagedVirtualMemory(memory_size=8 * MB, sync=ThreadedSync())


def run_threads(workers, count=4, timeout=30):
    threads = [threading.Thread(target=workers, args=(index,))
               for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "worker deadlocked"


class TestParallelFaulting:
    def test_disjoint_pages_one_cache(self, vm):
        cache = vm.cache_create(ZeroFillProvider())
        errors = []

        def worker(index):
            try:
                for round_index in range(20):
                    offset = (index * 20 + round_index) * PAGE
                    cache.write(offset, bytes([index + 1]) * 16)
            except Exception as exc:          # pragma: no cover
                errors.append(exc)

        run_threads(worker)
        assert errors == []
        for index in range(4):
            for round_index in range(20):
                offset = (index * 20 + round_index) * PAGE
                assert cache.read(offset, 16) == bytes([index + 1]) * 16

    def test_same_pages_mapped_from_many_contexts(self, vm):
        cache = vm.cache_create(ZeroFillProvider())
        cache.write(0, b"shared page")
        contexts = [vm.context_create(f"t{index}") for index in range(4)]
        for context in contexts:
            context.region_create(0x40000, PAGE, protection=Protection.RW,
                                  cache=cache, offset=0)
        results = []

        def worker(index):
            for _ in range(50):
                results.append(
                    vm.user_read(contexts[index], 0x40000, 11))

        run_threads(worker)
        assert all(result == b"shared page" for result in results)


class TestParallelDeferredCopy:
    def test_concurrent_cow_resolutions(self, vm):
        src = vm.cache_create(ZeroFillProvider(), name="src")
        for page in range(8):
            src.write(page * PAGE, bytes([page + 1]) * 32)
        copies = []
        for index in range(4):
            copy = vm.cache_create(ZeroFillProvider(), name=f"c{index}")
            src.copy(0, copy, 0, 8 * PAGE, policy=CopyPolicy.HISTORY)
            copies.append(copy)
        errors = []

        def worker(index):
            try:
                copy = copies[index]
                for page in range(8):
                    copy.write(page * PAGE, bytes([100 + index]) * 16)
            except Exception as exc:          # pragma: no cover
                errors.append(exc)

        run_threads(worker)
        assert errors == []
        for index, copy in enumerate(copies):
            for page in range(8):
                assert copy.read(page * PAGE, 16) == \
                    bytes([100 + index]) * 16
        # The source never changed.
        for page in range(8):
            assert src.read(page * PAGE, 2) == bytes([page + 1, page + 1])

    def test_writers_and_flushers(self, vm):
        cache = vm.cache_create(ZeroFillProvider())
        stop = threading.Event()
        errors = []

        def flusher(_):
            try:
                while not stop.is_set():
                    cache.sync(0, 8 * PAGE)
            except Exception as exc:          # pragma: no cover
                errors.append(exc)

        flush_thread = threading.Thread(target=flusher, args=(0,))
        flush_thread.start()
        try:
            for round_index in range(30):
                for page in range(8):
                    cache.write(page * PAGE, bytes([round_index % 200 + 1]))
        finally:
            stop.set()
            flush_thread.join(timeout=10)
        assert not flush_thread.is_alive()
        assert errors == []
        for page in range(8):
            assert cache.read(page * PAGE, 1) == bytes([30 % 200])
