"""Page-size genericity: nothing may assume 8 KB pages.

The GMI is architecture-independent; the PVM parameterizes on the MMU
page size.  The same scenarios must work at 4 KB (VAX/i386-like),
8 KB (Sun-3) and 16 KB.
"""

import pytest

from repro.gmi.interface import CopyPolicy
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.nucleus import Nucleus
from repro.pvm import PagedVirtualMemory
from repro.units import KB, MB

PAGE_SIZES = [4 * KB, 8 * KB, 16 * KB]


@pytest.fixture(params=PAGE_SIZES, ids=lambda s: f"{s // KB}KB")
def page_size(request):
    return request.param


class TestCoreAtEveryPageSize:
    def test_fault_and_copy_cycle(self, page_size):
        vm = PagedVirtualMemory(memory_size=2 * MB, page_size=page_size)
        ctx = vm.context_create()
        src = vm.cache_create(ZeroFillProvider(), name="src")
        ctx.region_create(0x100000, 4 * page_size, protection=Protection.RW,
                          cache=src, offset=0)
        for index in range(4):
            vm.user_write(ctx, 0x100000 + index * page_size,
                          bytes([index + 1]) * 8)
        dst = vm.cache_create(ZeroFillProvider(), name="dst")
        src.copy(0, dst, 0, 4 * page_size, policy=CopyPolicy.HISTORY)
        vm.user_write(ctx, 0x100000, b"mutated")
        assert dst.read(0, 2) == bytes([1, 1])
        assert dst.read(3 * page_size, 2) == bytes([4, 4])

    def test_per_page_copy(self, page_size):
        vm = PagedVirtualMemory(memory_size=2 * MB, page_size=page_size)
        src = vm.cache_create(ZeroFillProvider())
        src.write(0, b"per-page at any size")
        dst = vm.cache_create(ZeroFillProvider())
        src.copy(0, dst, 0, page_size, policy=CopyPolicy.PER_PAGE)
        src.write(0, b"gone")
        assert dst.read(0, 20) == b"per-page at any size"

    def test_eviction_roundtrip(self, page_size):
        vm = PagedVirtualMemory(memory_size=8 * page_size,
                                page_size=page_size)
        cache = vm.cache_create(ZeroFillProvider())
        for index in range(16):
            cache.write(index * page_size, bytes([index + 1]) * 4)
        for index in range(16):
            assert cache.read(index * page_size, 4) == \
                bytes([index + 1]) * 4

    def test_nucleus_stack(self, page_size):
        nucleus = Nucleus(memory_size=2 * MB, page_size=page_size)
        actor = nucleus.create_actor()
        nucleus.rgn_allocate(actor, 3 * page_size, address=0x100000)
        actor.write(0x100000 + page_size, b"sized right")
        other = nucleus.create_actor()
        nucleus.rgn_init_from_actor(other, actor, 0x100000,
                                    address=0x100000)
        actor.write(0x100000 + page_size, b"changed now")
        assert other.read(0x100000 + page_size, 11) == b"sized right"

    def test_ipc_transit_alignment_follows_page_size(self, page_size):
        nucleus = Nucleus(memory_size=2 * MB, page_size=page_size)
        from repro.gmi.upcalls import ZeroFillProvider as ZFP
        src = nucleus.vm.cache_create(ZFP())
        src.write(0, b"x" * page_size)
        nucleus.ipc.create_port("p")
        nucleus.ipc.send("p", src_cache=src, src_offset=0, size=page_size)
        message = nucleus.ipc.receive("p")
        assert message.size == page_size


class TestMismatchRejected:
    def test_mmu_memory_page_size_mismatch(self):
        from repro.errors import InvalidOperation
        from repro.hardware.paged_mmu import PagedMMU
        with pytest.raises(InvalidOperation):
            PagedVirtualMemory(memory_size=1 * MB, page_size=8 * KB,
                               mmu=PagedMMU(page_size=4 * KB))
