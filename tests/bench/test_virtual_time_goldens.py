"""Golden-file lock on the Table 6/7 virtual times.

The virtual clock accumulates floating-point costs event by event, so
its totals are sensitive to the *order and grouping* of charges — not
just their counts.  That makes the full grids a fingerprint of the
mechanism event stream: any refactor that reorders charges, merges
per-page charges into bulk ones, or drops/duplicates an event moves
some cell.  The goldens were captured from the pre-engine fault path
(tests/goldens/virtual_time_tables.json); the staged pipeline and the
batched hardware layer must reproduce every cell **bit-identically**
(``==`` on the floats, no tolerance).

If a deliberate cost-model or mechanism change moves these numbers,
regenerate the file with the snippet in its own docstring below and
say so in the commit message.

Regeneration::

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.bench.experiments import cow_table, zero_fill_table
    grids = {}
    for system in ("chorus", "mach"):
        grids[f"table6_{system}"] = {f"{kb},{p}": v for (kb, p), v
                                     in zero_fill_table(system).items()}
        grids[f"table7_{system}"] = {f"{kb},{p}": v for (kb, p), v
                                     in cow_table(system).items()}
    with open("tests/goldens/virtual_time_tables.json", "w") as fh:
        json.dump(grids, fh, indent=2, sort_keys=True)
    EOF
"""

import json
import pathlib

import pytest

from repro.bench.experiments import (
    cow_table, run_cow_cell, run_zero_fill_cell, zero_fill_table,
)

GOLDEN_PATH = (pathlib.Path(__file__).resolve().parents[1]
               / "goldens" / "virtual_time_tables.json")
GOLDENS = json.loads(GOLDEN_PATH.read_text())

TABLE_RUNNERS = {
    "table6": run_zero_fill_cell,
    "table7": run_cow_cell,
}


def _cells():
    for table, cells in sorted(GOLDENS.items()):
        prefix, system = table.split("_")
        for key, value in sorted(cells.items()):
            region_kb, pages = (int(part) for part in key.split(","))
            yield pytest.param(prefix, system, region_kb, pages, value,
                               id=f"{table}-{key}")


@pytest.mark.parametrize(
    ("prefix", "system", "region_kb", "pages", "expected"), list(_cells()))
def test_cell_bit_identical(prefix, system, region_kb, pages, expected):
    measured = TABLE_RUNNERS[prefix](system, region_kb, pages)
    # Exact equality on purpose: see the module docstring.
    assert measured == expected


def test_goldens_cover_the_full_grids():
    """The golden file must not silently go stale against the grid
    definition (new sizes/touch counts need a regeneration)."""
    for system in ("chorus", "mach"):
        live6 = {f"{kb},{p}" for kb, p in zero_fill_table(system)}
        live7 = {f"{kb},{p}" for kb, p in cow_table(system)}
        assert set(GOLDENS[f"table6_{system}"]) == live6
        assert set(GOLDENS[f"table7_{system}"]) == live7
