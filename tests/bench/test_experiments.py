"""The experiment runners themselves (not the tables they produce)."""

import pytest

from repro.bench.experiments import (
    cow_table, derived_metrics, run_cow_cell, run_zero_fill_cell,
    zero_fill_table,
)
from repro.bench.tables import REGION_SIZES_KB, TOUCH_COUNTS, cell_valid


class TestDeterminism:
    def test_zero_fill_cell_reproducible(self):
        assert run_zero_fill_cell("chorus", 256, 32) == \
            run_zero_fill_cell("chorus", 256, 32)

    def test_cow_cell_reproducible(self):
        assert run_cow_cell("mach", 256, 32) == run_cow_cell("mach", 256, 32)


class TestGridStructure:
    def test_grids_cover_exactly_valid_cells(self):
        grid = zero_fill_table("chorus")
        expected = {
            (region, pages)
            for region in REGION_SIZES_KB
            for pages in TOUCH_COUNTS
            if cell_valid(region, pages)
        }
        assert set(grid) == expected

    def test_unknown_system_rejected(self):
        with pytest.raises(KeyError):
            run_zero_fill_cell("multics", 8, 0)


class TestMonotonicity:
    """Physical sanity conditions any measurement must satisfy."""

    def test_more_touched_pages_cost_more(self):
        grid = zero_fill_table("chorus")
        assert grid[(1024, 0)] < grid[(1024, 1)] < grid[(1024, 32)] \
            < grid[(1024, 128)]

    def test_more_dirty_pages_cost_more(self):
        grid = cow_table("chorus")
        assert grid[(256, 0)] < grid[(256, 1)] < grid[(256, 32)]

    def test_bigger_regions_never_cheaper(self):
        grid = zero_fill_table("mach")
        for pages in (0, 1):
            assert grid[(8, pages)] <= grid[(256, pages)] \
                <= grid[(1024, pages)]


class TestDerivedFormulaConsistency:
    def test_metrics_self_consistent(self):
        zero_fill = zero_fill_table("chorus")
        cow = cow_table("chorus")
        metrics = derived_metrics(zero_fill, cow)
        # The tree-setup + per-page-protect decomposition must rebuild
        # the (1024, 0) cell from the (8, 0)-ish base.
        rebuilt = (zero_fill[(8, 0)]
                   + metrics["history_tree_setup_ms"]
                   + 128 * metrics["protect_per_page_ms"])
        assert rebuilt == pytest.approx(cow[(1024, 0)], rel=0.06)
        # And the COW per-page figure rebuilds the dirtiest cell.
        rebuilt_full = cow[(1024, 0)] + 128 * (
            metrics["cow_overhead_per_page_ms"] + 1.4)
        assert rebuilt_full == pytest.approx(cow[(1024, 128)], rel=0.01)
