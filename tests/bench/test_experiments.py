"""The experiment runners themselves (not the tables they produce)."""

import pytest

from repro.bench.experiments import (
    cow_table, derived_metrics, run_cow_cell, run_zero_fill_cell,
    trace_replay_ablation, zero_fill_table,
)
from repro.bench.tables import REGION_SIZES_KB, TOUCH_COUNTS, cell_valid
from repro.fastpath import numpy_available


class TestDeterminism:
    def test_zero_fill_cell_reproducible(self):
        assert run_zero_fill_cell("chorus", 256, 32) == \
            run_zero_fill_cell("chorus", 256, 32)

    def test_cow_cell_reproducible(self):
        assert run_cow_cell("mach", 256, 32) == run_cow_cell("mach", 256, 32)


class TestGridStructure:
    def test_grids_cover_exactly_valid_cells(self):
        grid = zero_fill_table("chorus")
        expected = {
            (region, pages)
            for region in REGION_SIZES_KB
            for pages in TOUCH_COUNTS
            if cell_valid(region, pages)
        }
        assert set(grid) == expected

    def test_unknown_system_rejected(self):
        with pytest.raises(KeyError):
            run_zero_fill_cell("multics", 8, 0)


class TestMonotonicity:
    """Physical sanity conditions any measurement must satisfy."""

    def test_more_touched_pages_cost_more(self):
        grid = zero_fill_table("chorus")
        assert grid[(1024, 0)] < grid[(1024, 1)] < grid[(1024, 32)] \
            < grid[(1024, 128)]

    def test_more_dirty_pages_cost_more(self):
        grid = cow_table("chorus")
        assert grid[(256, 0)] < grid[(256, 1)] < grid[(256, 32)]

    def test_bigger_regions_never_cheaper(self):
        grid = zero_fill_table("mach")
        for pages in (0, 1):
            assert grid[(8, pages)] <= grid[(256, pages)] \
                <= grid[(1024, pages)]


class TestTraceReplayAblation:
    """A13's runner, at toy scale: structure, not throughput."""

    @pytest.fixture(scope="class")
    def rows(self):
        return trace_replay_ablation(accesses=4000, pages=32,
                                     tlb_entries=16)

    def test_covers_every_available_engine(self, rows):
        expected = {"scalar", "vectorized_python"}
        if numpy_available():
            expected.add("vectorized_numpy")
        assert set(rows) == expected

    def test_vectorized_rows_only_differ_in_wall_time(self, rows):
        # The parity property guarantees observational equivalence;
        # the ablation table must show it: identical virtual time and
        # fault count, only the wall clock moves.
        scalar = rows["scalar"]
        for name, row in rows.items():
            assert row["virtual_ms"] == scalar["virtual_ms"], name
            assert row["faults"] == scalar["faults"], name

    def test_rates_and_speedups_are_derived(self, rows):
        assert rows["scalar"]["speedup"] == 1.0
        for row in rows.values():
            assert row["wall_ms"] > 0
            assert row["accesses_per_s"] == pytest.approx(
                4000 * 1000.0 / row["wall_ms"])
            assert row["speedup"] == pytest.approx(
                rows["scalar"]["wall_ms"] / row["wall_ms"])


class TestDerivedFormulaConsistency:
    def test_metrics_self_consistent(self):
        zero_fill = zero_fill_table("chorus")
        cow = cow_table("chorus")
        metrics = derived_metrics(zero_fill, cow)
        # The tree-setup + per-page-protect decomposition must rebuild
        # the (1024, 0) cell from the (8, 0)-ish base.
        rebuilt = (zero_fill[(8, 0)]
                   + metrics["history_tree_setup_ms"]
                   + 128 * metrics["protect_per_page_ms"])
        assert rebuilt == pytest.approx(cow[(1024, 0)], rel=0.06)
        # And the COW per-page figure rebuilds the dirtiest cell.
        rebuilt_full = cow[(1024, 0)] + 128 * (
            metrics["cow_overhead_per_page_ms"] + 1.4)
        assert rebuilt_full == pytest.approx(cow[(1024, 128)], rel=0.01)
