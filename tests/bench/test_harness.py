"""The benchmark harness itself: formatting, cost profiles, LoC table."""

import pytest

from repro.bench import costmodel
from repro.bench.loc import COMPONENTS, component_sizes, count_lines
from repro.bench.tables import (
    REGION_SIZES_KB, TOUCH_COUNTS, cell_valid, format_grid, format_series,
    shape_check_faster,
)
from repro.kernel.clock import CostEvent


class TestCellValidity:
    def test_cannot_touch_more_pages_than_region(self):
        assert not cell_valid(8, 32)
        assert not cell_valid(256, 128)
        assert cell_valid(1024, 128)
        assert cell_valid(8, 1)

    def test_grid_axes_match_paper(self):
        assert REGION_SIZES_KB == (8, 256, 1024)
        assert TOUCH_COUNTS == (0, 1, 32, 128)


class TestFormatting:
    def full_grid(self, value=1.0):
        return {
            (region, pages): value
            for region in REGION_SIZES_KB
            for pages in TOUCH_COUNTS
            if cell_valid(region, pages)
        }

    def test_format_grid_marks_invalid_cells(self):
        text = format_grid("t", self.full_grid())
        assert "-" in text
        assert "1.00 ms" in text

    def test_format_grid_with_reference(self):
        text = format_grid("t", self.full_grid(2.0),
                           reference=self.full_grid(3.0))
        assert "2.00 ms (3.00)" in text

    def test_format_series_alignment(self):
        text = format_series("title", ("a", "bee"),
                             [(1, 2.5), (10, 0.125)])
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "0.125" in text

    def test_shape_check_reports_violations(self):
        fast = self.full_grid(1.0)
        slow = self.full_grid(2.0)
        assert shape_check_faster(fast, slow) == []
        violations = shape_check_faster(slow, fast)
        assert len(violations) == len(fast)


class TestCostProfiles:
    def test_chorus_faster_than_mach_per_primitive(self):
        for event in (CostEvent.REGION_CREATE, CostEvent.FAULT_DISPATCH,
                      CostEvent.FRAME_ALLOC, CostEvent.PAGE_MAP):
            assert costmodel.CHORUS_SUN360.price(event) < \
                costmodel.MACH_SUN360.price(event)

    def test_data_movement_identical(self):
        """Same hardware: bcopy/bzero cost the same in both profiles."""
        for event in (CostEvent.BCOPY_PAGE, CostEvent.BZERO_PAGE):
            assert costmodel.CHORUS_SUN360.price(event) == \
                costmodel.MACH_SUN360.price(event)

    def test_calibration_identities(self):
        """The decompositions must add up to the paper's 5.3.2 numbers."""
        chorus = costmodel.CHORUS_SUN360
        zero_fill = (chorus.price(CostEvent.FAULT_DISPATCH)
                     + chorus.price(CostEvent.FRAME_ALLOC)
                     + chorus.price(CostEvent.PAGE_MAP))
        assert zero_fill == pytest.approx(0.27, abs=0.005)
        cow = (zero_fill + chorus.price(CostEvent.HISTORY_LOOKUP)
               + chorus.price(CostEvent.PROT_FAULT_RESOLVE))
        assert cow == pytest.approx(0.31, abs=0.005)

    def test_nucleus_factories_wire_profiles(self):
        chorus = costmodel.chorus_nucleus()
        assert chorus.vm.name == "pvm"
        assert chorus.clock.model.name == "chorus-sun3/60"
        mach = costmodel.mach_nucleus()
        assert mach.vm.name == "mach-shadow"
        assert mach.clock.model.name == "mach-sun3/60"


class TestLocTable:
    def test_every_component_path_exists(self):
        from repro.bench.loc import PACKAGE_ROOT
        for name, paths in COMPONENTS.items():
            for rel in paths:
                assert (PACKAGE_ROOT / rel).exists(), f"{name}: {rel}"

    def test_counts_positive_and_stable(self):
        sizes = component_sizes()
        assert all(lines > 0 for _, lines in sizes)
        assert sizes == component_sizes()          # deterministic

    def test_count_lines_on_file_and_dir(self):
        from repro.bench.loc import PACKAGE_ROOT
        single = count_lines(PACKAGE_ROOT / "units.py")
        package = count_lines(PACKAGE_ROOT / "gmi")
        assert 0 < single < package
