"""The bench flight recorder: record, validate, compare, gate."""

import copy
import json
import pathlib

import pytest

from repro.bench.harness import (
    BACKENDS, BENCH_RESULT_SCHEMA, WORKLOADS, compare, format_compare,
    run_suite, run_workload, record,
)
from repro.obs.schema import validate
from repro.tools.cli import main

SCHEMA_FILE = pathlib.Path(__file__).resolve().parents[2] \
    / "docs" / "bench_result.schema.json"

#: Small-but-real subset used for the smoke tests.
MINI = dict(workloads=["zero_fill", "pageout"], backends=["pvm"],
            repeats=2)


@pytest.fixture(scope="module")
def mini_doc():
    return run_suite(**MINI)


class TestSuite:
    def test_registry_covers_all_backends(self):
        covered = set()
        for workload in WORKLOADS.values():
            covered.update(workload.backends)
            assert set(workload.backends) <= set(BACKENDS)
        assert covered == set(BACKENDS)

    def test_mini_record_is_schema_valid(self, mini_doc):
        assert validate(mini_doc, BENCH_RESULT_SCHEMA) == []

    def test_checked_in_schema_matches_source(self, mini_doc):
        checked_in = json.loads(SCHEMA_FILE.read_text())
        assert checked_in == json.loads(json.dumps(BENCH_RESULT_SCHEMA))
        assert validate(mini_doc, checked_in) == []

    def test_cells_carry_wall_virtual_and_metrics(self, mini_doc):
        cells = {(cell["workload"], cell["backend"]): cell
                 for cell in mini_doc["results"]}
        assert set(cells) == {("zero_fill", "pvm"), ("pageout", "pvm")}
        for cell in cells.values():
            assert cell["wall_ms"] == min(cell["wall_ms_all"])
            assert len(cell["wall_ms_all"]) == MINI["repeats"]
            assert cell["virtual_ms"] > 0
            assert cell["metrics"]["counters"]

    def test_virtual_time_is_deterministic_across_runs(self, mini_doc):
        again = run_workload(WORKLOADS["zero_fill"], "pvm", repeats=1)
        cell = next(item for item in mini_doc["results"]
                    if item["workload"] == "zero_fill")
        assert again["virtual_ms"] == cell["virtual_ms"]

    def test_labeled_series_reach_the_recorded_metrics(self, mini_doc):
        cell = next(item for item in mini_doc["results"]
                    if item["workload"] == "zero_fill")
        counters = cell["metrics"]["counters"]
        assert counters["fault.write{backend=pvm}"] == \
            counters["fault.write"]

    def test_record_writes_validated_json(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        document = record(path, **MINI)
        assert json.loads(path.read_text()) == \
            json.loads(json.dumps(document))

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            run_suite(workloads=["nope"])
        with pytest.raises(ValueError):
            run_suite(backends=["vax"])
        with pytest.raises(ValueError):
            run_workload(WORKLOADS["dsm_ping_pong"], "minimal")


class TestTraceReplayCells:
    @pytest.fixture(scope="class")
    def trace_cell(self):
        return run_workload(WORKLOADS["trace_replay_zipf"], "pvm",
                            repeats=1)

    def test_cell_records_the_access_gauge(self, trace_cell):
        from repro.bench.harness import TRACE_REPLAY_ACCESSES
        gauges = trace_cell["metrics"]["gauges"]
        assert gauges["trace.accesses"] == float(TRACE_REPLAY_ACCESSES)
        counters = trace_cell["metrics"]["counters"]
        assert counters["vbus.replays"] == 1
        # Prewarmed region, enough frames: every access is a hit.
        assert counters["vbus.fast"] == TRACE_REPLAY_ACCESSES

    def test_prewarmed_replay_has_zero_virtual_cost(self, trace_cell):
        # All pages resident before the body runs, so no faults —
        # and translation is free on the virtual clock.
        assert trace_cell["virtual_ms"] == 0.0

    def test_compare_derives_accesses_per_second(self, trace_cell):
        document = {"meta": {"version": 1, "repeats": 1},
                    "results": [trace_cell]}
        report = compare(document, document)
        row = report["rows"][0]
        expected = 1_000_000 * 1000.0 / trace_cell["wall_ms"]
        assert row["accesses_per_s"] == pytest.approx(expected)
        assert row["baseline_accesses_per_s"] == \
            pytest.approx(expected)
        rendered = format_compare(report)
        assert "acc/s now" in rendered

    def test_non_trace_cells_render_a_dash(self, mini_doc):
        report = compare(mini_doc, mini_doc)
        assert all(row["accesses_per_s"] is None
                   for row in report["rows"])
        lines = format_compare(report).splitlines()
        header = lines[0]
        assert "acc/s" in header


class TestCompareGate:
    def test_identical_documents_pass(self, mini_doc):
        report = compare(mini_doc, mini_doc)
        assert report["regressions"] == []
        assert all(row["status"] == "ok" for row in report["rows"])
        assert all(row["virtual_drift_ms"] == 0.0
                   for row in report["rows"])
        assert "ok:" in format_compare(report)

    def test_doctored_baseline_flags_2x_regression(self, mini_doc):
        doctored = copy.deepcopy(mini_doc)
        for cell in doctored["results"]:
            cell["wall_ms"] /= 2.0       # current now looks 2x slower
        report = compare(doctored, mini_doc, threshold=1.5)
        assert len(report["regressions"]) == len(mini_doc["results"])
        assert all(row["wall_ratio"] == pytest.approx(2.0)
                   for row in report["regressions"])
        assert "REGRESSION" in format_compare(report)

    def test_threshold_is_configurable(self, mini_doc):
        doctored = copy.deepcopy(mini_doc)
        for cell in doctored["results"]:
            cell["wall_ms"] /= 2.0
        assert compare(doctored, mini_doc,
                       threshold=3.0)["regressions"] == []

    def test_new_and_missing_cells_reported_not_gated(self, mini_doc):
        shrunk = copy.deepcopy(mini_doc)
        renamed = shrunk["results"].pop()
        renamed = dict(renamed, workload="brand_new")
        current = copy.deepcopy(mini_doc)
        current["results"].append(renamed)
        report = compare(shrunk, current)
        statuses = {(row["workload"], row["backend"]): row["status"]
                    for row in report["rows"]}
        assert statuses[("brand_new", "pvm")] == "new"
        assert "ok" in statuses.values() or not report["regressions"]

    def test_elderly_baseline_degrades_gracefully(self, mini_doc):
        # A baseline recorded before the psi gauges, the io-queue
        # gauges or even the virtual clock existed must still compare:
        # the newer columns render as "-", never a KeyError.
        elderly = copy.deepcopy(mini_doc)
        for cell in elderly["results"]:
            cell.pop("virtual_ms", None)
            metrics = cell["metrics"]
            metrics.pop("gauges", None)
            metrics.get("meta", {}).pop("virtual_ms", None)
        report = compare(elderly, mini_doc)
        assert report["regressions"] == []
        for row in report["rows"]:
            assert row["virtual_drift_ms"] is None
            assert row["baseline_tlb_hit_rate"] is None
            assert row["baseline_stall_fraction"] is None
        rendered = format_compare(report)
        assert "ok:" in rendered
        assert "-" in rendered

    def test_baseline_without_metrics_key_still_compares(self, mini_doc):
        skeletal = copy.deepcopy(mini_doc)
        for cell in skeletal["results"]:
            cell.pop("metrics", None)
        report = compare(skeletal, mini_doc)
        assert report["regressions"] == []
        assert "ok:" in format_compare(report)

    def test_cli_gate_exits_nonzero(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        document = record(current_path, workloads=["pageout"],
                          backends=["pvm"], repeats=1)
        doctored = copy.deepcopy(document)
        for cell in doctored["results"]:
            cell["wall_ms"] /= 2.0
        baseline_path.write_text(json.dumps(doctored))
        code = main(["bench", "--compare", str(baseline_path),
                     "--current", str(current_path)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out
        # The same comparison passes at a forgiving threshold.
        assert main(["bench", "--compare", str(baseline_path),
                     "--current", str(current_path),
                     "--threshold", "4.0"]) == 0

    def test_cli_record_writes_document(self, tmp_path, capsys):
        out = tmp_path / "BENCH_cli.json"
        code = main(["bench", "--record", "--out", str(out),
                     "--workloads", "pageout", "--backends", "pvm",
                     "--repeats", "1"])
        assert code == 0
        document = json.loads(out.read_text())
        assert validate(document, BENCH_RESULT_SCHEMA) == []

    def test_cli_without_action_errors(self, capsys):
        assert main(["bench"]) == 2
