"""The unified observability layer: registry, spans, sinks, probes."""

import io
import json
import warnings

import pytest

from repro.gmi.interface import CopyPolicy
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.obs import (
    CallbackSink, JsonlSink, MetricsRegistry, NOOP_SPAN, NULL_PROBE,
    Probe, RingBufferSink,
)
from repro.pvm import PagedVirtualMemory
from repro.tools import VmStat
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def vm():
    return PagedVirtualMemory(memory_size=4 * MB)


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 3)
        assert registry.counter_value("a") == 4
        assert registry.counter_value("never") == 0

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.set_gauge("g", 1.5)
        registry.observe("h", 2.0)
        snap = registry.snapshot()
        registry.inc("a")
        assert snap["counters"] == {"a": 1}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["generation"] == 0

    def test_reset_bumps_generation(self):
        registry = MetricsRegistry()
        registry.inc("a")
        generation = registry.generation
        registry.reset()
        assert registry.generation == generation + 1
        assert registry.counter_values() == {}

    def test_scoped_drop_bumps_generation_and_spares_others(self):
        registry = MetricsRegistry()
        registry.inc("mine")
        registry.inc("theirs")
        generation = registry.generation
        registry.drop_counters(["mine"])
        assert registry.generation == generation + 1
        assert registry.counter_values() == {"theirs": 1}


class TestLabeledSeries:
    def test_series_name_sorts_label_keys(self):
        from repro.obs.metrics import series_name, split_series
        series = series_name("fault.write", {"stage": "resolve",
                                             "backend": "pvm"})
        assert series == "fault.write{backend=pvm,stage=resolve}"
        # Whatever order the call site wrote, one storage key results.
        assert series == series_name("fault.write",
                                     {"backend": "pvm", "stage": "resolve"})
        assert split_series(series) == (
            "fault.write", {"backend": "pvm", "stage": "resolve"})
        assert split_series("plain") == ("plain", {})

    def test_labeled_inc_maintains_the_rollup(self):
        registry = MetricsRegistry()
        registry.inc("fault.write", 2, labels={"backend": "pvm"})
        registry.inc("fault.write", 3, labels={"backend": "mach-shadow"})
        registry.inc("fault.write")            # plain increments still work
        assert registry.counter_value("fault.write") == 6
        assert registry.counter_value("fault.write",
                                      labels={"backend": "pvm"}) == 2
        assert registry.labeled_counters("fault.write") == {
            "fault.write{backend=pvm}": 2,
            "fault.write{backend=mach-shadow}": 3,
        }

    def test_precomputed_series_key_rolls_up_too(self):
        from repro.obs.metrics import series_name
        registry = MetricsRegistry()
        series = series_name("engine.stage.locate", {"backend": "pvm"})
        registry.inc(series, 4)
        assert registry.counter_value("engine.stage.locate") == 4
        assert registry.counter_value(series) == 4

    def test_dropping_one_labeled_series_subtracts_from_rollup(self):
        registry = MetricsRegistry()
        registry.inc("c", 2, labels={"k": "a"})
        registry.inc("c", 3, labels={"k": "b"})
        generation = registry.generation
        registry.drop_counters(["c{k=a}"])
        assert registry.generation == generation + 1
        assert registry.counter_value("c") == 3       # still = sum remaining
        assert registry.labeled_counters("c") == {"c{k=b}": 3}

    def test_dropping_the_plain_name_takes_labeled_series_with_it(self):
        registry = MetricsRegistry()
        registry.inc("c", 2, labels={"k": "a"})
        registry.inc("c", 3, labels={"k": "b"})
        registry.inc("other")
        registry.drop_counters(["c"])
        assert registry.counter_value("c") == 0
        assert registry.labeled_counters("c") == {}
        assert registry.counter_value("other") == 1

    def test_labeled_observe_feeds_both_histograms(self):
        registry = MetricsRegistry()
        registry.observe("depth", 2.0, labels={"backend": "pvm"})
        registry.observe("depth", 4.0, labels={"backend": "mach-shadow"})
        assert registry.histogram("depth").count == 2
        assert registry.histogram("depth").mean == pytest.approx(3.0)
        assert registry.histogram(
            "depth", labels={"backend": "pvm"}).max == pytest.approx(2.0)

    def test_labeled_gauges_have_no_rollup(self):
        registry = MetricsRegistry()
        registry.set_gauge("occupancy", 5.0, labels={"port": "paged"})
        assert registry.gauge_value("occupancy",
                                    labels={"port": "paged"}) == 5.0
        assert registry.gauge_value("occupancy") == 0.0


class TestHistogram:
    def test_percentiles_interpolate(self):
        registry = MetricsRegistry()
        for value in range(1, 101):          # 1..100
            registry.observe("depth", float(value))
        histogram = registry.histogram("depth")
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0
        assert histogram.percentile(50) == pytest.approx(50.5)
        assert histogram.percentile(90) == pytest.approx(90.1)

    def test_exact_moments_survive_sampling(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in range(20000):           # overflows the 8192 sample
            registry.observe("h", float(value))
        assert histogram.count == 20000
        assert histogram.min == 0.0
        assert histogram.max == 19999.0
        assert histogram.mean == pytest.approx(19999 / 2)

    def test_summary_shape(self):
        registry = MetricsRegistry()
        registry.observe("h", 3.0)
        summary = registry.histogram("h").summary()
        assert set(summary) == {"count", "min", "max", "mean",
                                "p50", "p90", "p99"}

    def test_empty_histogram_percentiles_are_zero(self):
        histogram = MetricsRegistry().histogram("empty")
        for q in (0, 50, 100):
            assert histogram.percentile(q) == 0.0

    def test_percentile_rejects_out_of_range(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(-0.1)
        with pytest.raises(ValueError):
            histogram.percentile(100.1)

    def test_single_sample_answers_every_percentile(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(7.0)
        for q in (0, 1, 50, 99, 100):
            assert histogram.percentile(q) == 7.0

    def test_extremes_exact_after_reservoir_decimation(self):
        # Push the extremes in early, then flood the reservoir: q=0 and
        # q=100 must answer from the exact running min/max even if the
        # decimating sample overwrote them.
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(-123.0)
        histogram.observe(456.0)
        for value in range(20000):
            histogram.observe(50.0 + (value % 7))
        assert histogram.percentile(0) == -123.0
        assert histogram.percentile(100) == 456.0
        assert histogram.min == -123.0
        assert histogram.max == 456.0

    def test_bounded_reservoir_is_deterministic(self):
        # Same observation sequence -> bit-identical summaries; the
        # round-robin decimation involves no randomness.
        def fill():
            histogram = MetricsRegistry().histogram("h")
            for value in range(25000):
                histogram.observe(float((value * 7919) % 1000))
            return histogram
        first, second = fill(), fill()
        assert first.summary() == second.summary()
        assert first.percentile(37.5) == second.percentile(37.5)


# ---------------------------------------------------------------------------
# Probe and spans
# ---------------------------------------------------------------------------

class TestProbe:
    def test_disabled_probe_hands_out_the_shared_noop_span(self):
        probe = Probe()
        first = probe.span("a")
        second = probe.span("b")
        # Identity, not just equality: nothing is allocated per event.
        assert first is second is NOOP_SPAN
        assert not first
        with first as span:
            span.set(anything="goes").event("x")

    def test_null_probe_is_shared_and_off(self):
        assert NULL_PROBE.enabled is False
        assert NULL_PROBE.span("x") is NOOP_SPAN

    def test_span_nesting_records_parent_and_depth(self):
        sink = RingBufferSink()
        probe = Probe(sink=sink)
        with probe.span("outer") as outer:
            with probe.span("inner") as inner:
                assert probe.current_span() is inner
            assert probe.current_span() is outer
        assert probe.current_span() is None
        inner_rec, outer_rec = sink.spans  # children finish first
        assert inner_rec.name == "inner"
        assert inner_rec.parent_id == outer_rec.span_id
        assert inner_rec.depth == 1
        assert outer_rec.parent_id is None

    def test_span_duration_and_histogram_use_virtual_time(self, vm):
        sink = RingBufferSink()
        vm.probe.set_sink(sink)
        with vm.probe.span("op"):
            vm.clock.advance(7.0)
        (span,) = sink.by_name("op")
        assert span.duration_ms == pytest.approx(7.0)
        assert vm.registry.histogram("span.op.ms").max == pytest.approx(7.0)

    def test_charges_attribute_to_innermost_span(self, vm):
        from repro.kernel.clock import CostEvent
        sink = RingBufferSink()
        vm.probe.set_sink(sink)
        with vm.probe.span("outer"):
            vm.clock.charge(CostEvent.FRAME_ALLOC)
            with vm.probe.span("inner"):
                vm.clock.charge(CostEvent.BZERO_PAGE, 2)
        inner, outer = sink.spans
        assert inner.events == {"bzero_page": 2}
        assert outer.events == {"frame_alloc": 1}

    def test_span_records_error_class(self):
        sink = RingBufferSink()
        probe = Probe(sink=sink)
        with pytest.raises(ValueError):
            with probe.span("boom"):
                raise ValueError("nope")
        (span,) = sink.spans
        assert span.attrs["error"] == "ValueError"

    def test_set_sink_returns_previous_and_detaches(self, vm):
        sink = RingBufferSink()
        previous = vm.probe.set_sink(sink)
        assert vm.probe.enabled
        restored = vm.probe.set_sink(None)
        assert restored is sink
        assert not vm.probe.enabled
        assert vm.probe.set_sink(previous) is not sink

    def test_empty_ring_buffer_sink_still_enables_tracing(self):
        # RingBufferSink has __len__; an empty one must not be mistaken
        # for "no sink".
        probe = Probe(sink=RingBufferSink())
        assert probe.enabled

    def test_callback_sink(self):
        seen = []
        probe = Probe(sink=CallbackSink(seen.append))
        with probe.span("cb"):
            pass
        assert [span.name for span in seen] == ["cb"]


class TestJsonlSink:
    def test_round_trip(self, vm):
        buffer = io.StringIO()
        vm.probe.set_sink(JsonlSink(buffer))
        cache = vm.cache_create(ZeroFillProvider(), name="j")
        context = vm.context_create("j")
        context.region_create(0x40000, PAGE, protection=Protection.RW,
                              cache=cache, offset=0)
        context.switch()
        vm.user_write(context, 0x40000, b"x")
        lines = [json.loads(line)
                 for line in buffer.getvalue().splitlines()]
        assert lines, "no spans were written"
        names = {record["span"] for record in lines}
        assert "fault.resolve" in names
        fault = next(record for record in lines
                     if record["span"] == "fault.resolve")
        assert fault["attrs"]["write"] is True
        assert fault["events"]["fault_dispatch"] == 1
        # Nesting is visible in the stream: the pull-in happened inside
        # the materialize stage of the fault's pipeline run.
        materialize = next(record for record in lines
                           if record["span"] == "engine.stage.materialize")
        assert materialize["parent"] == fault["id"]
        assert materialize["depth"] == fault["depth"] + 1
        pull = next(record for record in lines
                    if record["span"] == "cache.pull_in")
        assert pull["parent"] == materialize["id"]
        assert pull["depth"] == materialize["depth"] + 1


# ---------------------------------------------------------------------------
# VM integration: one registry for everything
# ---------------------------------------------------------------------------

class TestVmIntegration:
    def _touch(self, vm, pages=2):
        cache = vm.cache_create(ZeroFillProvider(), name="w")
        context = vm.context_create("w")
        context.region_create(0x40000, pages * PAGE,
                              protection=Protection.RW, cache=cache,
                              offset=0)
        context.switch()
        for index in range(pages):
            vm.user_write(context, 0x40000 + index * PAGE, b"x")
        return cache, context

    def test_clock_tlb_and_probe_share_one_registry(self):
        vm = PagedVirtualMemory(memory_size=4 * MB, tlb_entries=16)
        self._touch(vm)
        counters = vm.registry.counter_values()
        assert counters["fault_dispatch"] == 2     # clock events
        assert counters["fault.write"] == 2        # probe counters
        assert "tlb.miss" in counters              # TLB statistics

    def test_hot_paths_record_labeled_series_alongside_rollups(self):
        vm = PagedVirtualMemory(memory_size=4 * MB, tlb_entries=16)
        self._touch(vm)
        counters = vm.registry.counter_values()
        # Faults decompose by backend; the rollup equals the series sum.
        assert counters["fault.write{backend=pvm}"] == 2
        assert counters["fault.write"] == 2
        # Pipeline stages decompose by backend too.
        assert counters["engine.stage.locate{backend=pvm}"] == \
            counters["engine.stage.locate"]
        # MMU walk statistics decompose by port (via the labeled
        # EventCounter view), TLB-style, in the same shared registry.
        assert counters["mmu.walk_level1{port=paged}"] > 0
        assert counters["mmu.walk_level1"] == \
            counters["mmu.walk_level1{port=paged}"]
        # Segment pull-ins decompose by segment name and access mode.
        pull_series = vm.registry.labeled_counters("cache.pull_in")
        assert sum(pull_series.values()) == counters["cache.pull_in"]
        assert any("segment=w" in key for key in pull_series)

    def test_labeled_rollups_keep_snapshot_schema_valid(self):
        from repro.obs.schema import SNAPSHOT_SCHEMA, validate
        vm = PagedVirtualMemory(memory_size=4 * MB, tlb_entries=16)
        self._touch(vm)
        assert validate(vm.metrics_snapshot(), SNAPSHOT_SCHEMA) == []

    def test_mmu_port_stats_api_unchanged(self):
        # Consumers keep reading port statistics by bare name; the
        # labeled storage is invisible through EventCounter.get().
        vm = PagedVirtualMemory(memory_size=4 * MB)
        self._touch(vm)
        assert vm.mmu.stats.get("walk_level1") == \
            vm.registry.counter_value("mmu.walk_level1{port=paged}")

    def test_metrics_snapshot_carries_gauges_and_meta(self):
        vm = PagedVirtualMemory(memory_size=4 * MB, tlb_entries=16)
        self._touch(vm)
        snapshot = vm.metrics_snapshot()
        assert snapshot["meta"]["manager"] == "pvm"
        assert snapshot["meta"]["page_size"] == vm.page_size
        assert snapshot["gauges"]["mem.resident_pages"] == 2.0
        assert 0.0 <= snapshot["gauges"]["tlb.hit_ratio"] <= 1.0

    def test_all_backends_report_through_the_same_api(self):
        from repro import (
            MachVirtualMemory, PagedVirtualMemory, RealTimeVirtualMemory,
        )
        for backend in (PagedVirtualMemory, MachVirtualMemory,
                        RealTimeVirtualMemory):
            vm = backend(memory_size=4 * MB)
            self._touch(vm)
            counters = vm.registry.counter_values()
            assert counters["bzero_page"] == 2, backend.name
            snapshot = vm.metrics_snapshot()
            assert snapshot["meta"]["manager"] == backend.name

    def test_tracing_disabled_by_default_and_event_stream_unchanged(self,
                                                                    vm):
        assert not vm.probe.enabled
        baseline = PagedVirtualMemory(memory_size=4 * MB)
        traced = PagedVirtualMemory(memory_size=4 * MB)
        traced.probe.set_sink(RingBufferSink())
        for machine in (baseline, traced):
            self._touch(machine)
        # Tracing must not perturb the clock: identical virtual time
        # and identical mechanism counts.
        assert traced.clock.now() == baseline.clock.now()
        assert (traced.clock.snapshot() == baseline.clock.snapshot())


# ---------------------------------------------------------------------------
# The VmStat stale-baseline bugfix
# ---------------------------------------------------------------------------

class TestVmStatResampling:
    def test_reset_between_samples_does_not_go_negative(self, vm):
        stat = VmStat(vm)
        cache = vm.cache_create(ZeroFillProvider(), name="v")
        context = vm.context_create("v")
        context.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                              cache=cache, offset=0)
        context.switch()
        vm.user_write(context, 0x40000, b"x")
        stat.sample("warm")
        vm.clock.reset()                      # zeroes counters AND time
        vm.user_write(context, 0x40000 + PAGE, b"y")
        sample = stat.sample("after-reset")
        assert sample.deltas["faults"] == 1   # not 1 - pre-reset count
        assert all(delta >= 0 for delta in sample.deltas.values())
        assert sample.time_ms >= 0

    def test_registry_reset_detected_via_generation(self, vm):
        stat = VmStat(vm)
        vm.registry.inc("unrelated")          # counters exist
        vm.registry.reset()
        sample = stat.sample("fresh")
        assert all(delta >= 0 for delta in sample.deltas.values())

    def test_labeled_series_drop_mid_interval_does_not_go_negative(
            self, vm):
        # Dropping one labeled series shrinks its rollup; the
        # generation bump must force VmStat to resample rather than
        # diff against the pre-drop baseline.
        stat = VmStat(vm)
        cache = vm.cache_create(ZeroFillProvider(), name="ld")
        context = vm.context_create("ld")
        context.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                              cache=cache, offset=0)
        context.switch()
        vm.user_write(context, 0x40000, b"x")
        stat.sample("warm")
        generation = vm.registry.generation
        vm.registry.drop_counters(["fault.write{backend=pvm}"])
        assert vm.registry.generation == generation + 1
        vm.user_write(context, 0x40000 + PAGE, b"y")
        sample = stat.sample("after-drop")
        assert all(delta >= 0 for delta in sample.deltas.values())

    def test_full_counter_drop_mid_interval_does_not_go_negative(
            self, vm):
        # Dropping the plain name takes every labeled series with it —
        # the larger reset must be detected the same way.
        stat = VmStat(vm)
        cache = vm.cache_create(ZeroFillProvider(), name="fd")
        context = vm.context_create("fd")
        context.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                              cache=cache, offset=0)
        context.switch()
        vm.user_write(context, 0x40000, b"x")
        stat.sample("warm")
        vm.registry.drop_counters(["fault.write", "fault_dispatch"])
        assert vm.registry.counter_value("fault.write") == 0
        assert vm.registry.labeled_counters("fault.write") == {}
        vm.user_write(context, 0x40000 + PAGE, b"y")
        sample = stat.sample("after-drop")
        assert all(delta >= 0 for delta in sample.deltas.values())


class TestWallStamps:
    def test_spans_carry_wall_time_when_traced(self, vm):
        sink = RingBufferSink()
        vm.probe.set_sink(sink)
        with vm.probe.span("op"):
            vm.clock.advance(1.0)
        (span,) = sink.by_name("op")
        assert span.wall_start_s is not None
        assert span.wall_end_s is not None
        assert span.wall_ms >= 0.0
        assert span.to_dict()["wall_ms"] == span.wall_ms

    def test_wall_time_never_touches_the_virtual_clock(self, vm):
        sink = RingBufferSink()
        vm.probe.set_sink(sink)
        before = vm.clock.now()
        with vm.probe.span("op"):
            pass
        assert vm.clock.now() == before


# ---------------------------------------------------------------------------
# Deprecation shims
# ---------------------------------------------------------------------------

class TestDeprecatedPositionalArgs:
    def test_region_create_positional_warns_and_works(self, vm):
        cache = vm.cache_create(ZeroFillProvider(), name="d")
        context = vm.context_create("d")
        with pytest.warns(DeprecationWarning):
            region = context.region_create(0x40000, PAGE,
                                           Protection.RW, cache, 0)
        assert region.protection is Protection.RW
        assert region.cache is cache

    def test_cache_copy_positional_warns_and_works(self, vm):
        src = vm.cache_create(ZeroFillProvider(), name="s")
        dst = vm.cache_create(ZeroFillProvider(), name="t")
        src.write(0, b"abc")
        with pytest.warns(DeprecationWarning):
            src.copy(0, dst, 0, PAGE, CopyPolicy.EAGER)
        assert dst.read(0, 3) == b"abc"

    def test_keyword_form_stays_silent(self, vm):
        cache = vm.cache_create(ZeroFillProvider(), name="q")
        context = vm.context_create("q")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            context.region_create(0x40000, PAGE, protection=Protection.RW,
                                  cache=cache, offset=0)

    def test_region_create_requires_protection_and_cache(self, vm):
        context = vm.context_create("r")
        with pytest.raises(TypeError):
            context.region_create(0x40000, PAGE)


# ---------------------------------------------------------------------------
# Structured error details
# ---------------------------------------------------------------------------

class TestErrorDetails:
    def test_segfault_details(self, vm):
        from repro.errors import SegmentationFault
        context = vm.context_create("e")
        context.switch()
        with pytest.raises(SegmentationFault) as info:
            vm.user_read(context, 0xdead000, 1)
        assert info.value.details["address"] == 0xdead000
        assert info.value.details["space"] == context.space
        assert info.value.details["context"] == "e"

    def test_access_violation_details(self, vm):
        from repro.errors import AccessViolation
        cache = vm.cache_create(ZeroFillProvider(), name="ro")
        context = vm.context_create("ro")
        context.region_create(0x40000, PAGE, protection=Protection.READ,
                              cache=cache, offset=0)
        context.switch()
        with pytest.raises(AccessViolation) as info:
            vm.user_write(context, 0x40000, b"x")
        assert info.value.details["address"] == 0x40000
        assert info.value.details["write"] is True

    def test_details_default_empty(self):
        from repro.errors import InvalidOperation
        assert InvalidOperation("plain message").details == {}


# ---------------------------------------------------------------------------
# Region advice hints
# ---------------------------------------------------------------------------

class TestRegionAdvice:
    def test_willneed_prefetches(self, vm):
        cache = vm.cache_create(ZeroFillProvider(), name="wn")
        context = vm.context_create("wn")
        context.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                              cache=cache, offset=0, advice="willneed")
        assert len(cache.pages) == 2          # resident before any fault

    def test_invalid_advice_rejected(self, vm):
        from repro.errors import InvalidOperation
        cache = vm.cache_create(ZeroFillProvider(), name="bad")
        context = vm.context_create("bad")
        with pytest.raises(InvalidOperation):
            context.region_create(0x40000, PAGE, protection=Protection.RW,
                                  cache=cache, offset=0, advice="psychic")
