"""The paper's fig-3.c motivation at the Unix level: "in Unix this
occurs for instance when creating a pipeline, or with daemons" — one
parent forking several live children, working objects underneath."""

import pytest

from repro.mix import Pipe, ProcessManager, ProgramStore
from repro.mix.program import Program
from repro.nucleus import Nucleus
from repro.segments import MemoryMapper
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def rig():
    nucleus = Nucleus(memory_size=8 * MB)
    mapper = MemoryMapper()
    nucleus.register_mapper(mapper)
    store = ProgramStore(mapper, PAGE)
    store.install("sh", text=b"SH" * 256, data=b"ENV " * 4096)
    manager = ProcessManager(nucleus, store)
    return nucleus, manager


class TestPipelineFork:
    def test_three_stage_pipeline_shares_snapshot(self, rig):
        """sh | a | b | c: every stage sees the shell's pre-pipeline
        state; a working object carries the originals (fig 3.c/3.d)."""
        nucleus, manager = rig
        shell = manager.spawn("sh")
        shell.write(Program.DATA_BASE, b"PIPELINE=| a | b | c")
        stages = [shell.fork() for _ in range(3)]
        # The data-segment history tree grew working objects (the
        # stack segment grows its own pair as well).
        data_workers = [cache for cache in nucleus.vm.caches()
                        if cache.is_history and ".init" in cache.name]
        assert len(data_workers) == 2          # three copies -> two w's
        # The shell mutates its state while the stages run.
        shell.write(Program.DATA_BASE, b"PIPELINE=done        ")
        for stage in stages:
            assert stage.read(Program.DATA_BASE, 20) == \
                b"PIPELINE=| a | b | c"

    def test_stages_communicate_and_exit(self, rig):
        nucleus, manager = rig
        shell = manager.spawn("sh")
        stages = [shell.fork() for _ in range(3)]
        pipes = [Pipe(nucleus) for _ in range(2)]
        # stage0 -> pipe0 -> stage1 -> pipe1 -> stage2
        pipes[0].write(b"raw input")
        data = pipes[0].read(9)
        pipes[1].write(data.upper())
        assert pipes[1].read(9) == b"RAW INPUT"
        for stage in stages:
            stage.exit(0)
        while manager.wait(shell):
            pass
        # Working objects unwound with the stages.
        assert all(cache.destroyed or not cache.is_history
                   for cache in nucleus.vm.caches())

    def test_daemon_pattern_long_lived_children(self, rig):
        """Daemons: children outlive repeated parent mutations."""
        nucleus, manager = rig
        init = manager.spawn("sh")
        init.write(Program.DATA_BASE, b"boot-config-v0")
        daemons = []
        for generation in range(4):
            daemon = init.fork()
            daemons.append((generation, daemon))
            init.write(Program.DATA_BASE,
                       f"boot-config-v{generation + 1}".encode())
        # Each daemon froze the config as of its own fork.
        for generation, daemon in daemons:
            expected = f"boot-config-v{generation}".encode()
            assert daemon.read(Program.DATA_BASE, len(expected)) == \
                expected
        assert init.read(Program.DATA_BASE, 14) == b"boot-config-v4"

    def test_daemon_exit_order_irrelevant(self, rig):
        nucleus, manager = rig
        init = manager.spawn("sh")
        init.write(Program.DATA_BASE, b"shared")
        daemons = [init.fork() for _ in range(4)]
        # Exit in shuffled order, including the parent in the middle.
        daemons[2].exit(0)
        daemons[0].exit(0)
        survivor_a, survivor_b = daemons[1], daemons[3]
        init.exit(0)
        assert survivor_a.read(Program.DATA_BASE, 6) == b"shared"
        assert survivor_b.read(Program.DATA_BASE, 6) == b"shared"
        survivor_a.exit(0)
        assert survivor_b.read(Program.DATA_BASE, 6) == b"shared"
        survivor_b.exit(0)
        assert manager.live_processes() == 0
