"""The a.out-style binary format and loader."""

import pytest

from repro.errors import InvalidOperation
from repro.mix import ProcessManager, ProgramStore
from repro.mix.loader import (
    BinaryLoader, HEADER, MAGIC, pack_image, parse_header,
)
from repro.mix.program import Program
from repro.nucleus import Nucleus
from repro.segments import MemoryMapper
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def rig():
    nucleus = Nucleus(memory_size=4 * MB)
    mapper = MemoryMapper()
    nucleus.register_mapper(mapper)
    store = ProgramStore(mapper, PAGE)
    loader = BinaryLoader(nucleus, PAGE)
    return nucleus, mapper, store, loader


class TestFormat:
    def test_pack_parse_roundtrip(self):
        blob = pack_image(b"TEXT" * 10, b"DATA" * 5, bss_size=100,
                          stack_size=32 * KB, entry=0x40)
        header = parse_header(blob)
        assert header.text_size == 40
        assert header.data_size == 20
        assert header.bss_size == 100
        assert header.stack_size == 32 * KB
        assert header.entry == 0x40
        assert header.file_size == HEADER.size + 60

    def test_bad_magic_rejected(self):
        blob = bytearray(pack_image(b"T", b"D"))
        blob[0] ^= 0xFF
        with pytest.raises(InvalidOperation, match="magic"):
            parse_header(bytes(blob))

    def test_truncated_rejected(self):
        with pytest.raises(InvalidOperation, match="truncated"):
            parse_header(b"\x00" * 4)

    def test_bad_version_rejected(self):
        import struct
        blob = struct.pack(">7I", MAGIC, 99, 0, 0, 0, 0, 0)
        with pytest.raises(InvalidOperation, match="version"):
            parse_header(blob)


class TestLoader:
    def test_examine_reads_header_only(self, rig):
        nucleus, mapper, store, loader = rig
        image = pack_image(b"X" * (64 * KB), b"Y" * (32 * KB))
        cap = mapper.register(image)
        header = loader.examine(cap)
        assert header.text_size == 64 * KB
        # Only the header page was pulled.
        assert mapper.read_requests == 1

    def test_load_and_exec(self, rig):
        nucleus, mapper, store, loader = rig
        image = pack_image(b"CODE" * 1024, b"VARS" * 512, bss_size=8 * KB)
        cap = mapper.register(image)
        loader.load(store, "app", cap)
        manager = ProcessManager(nucleus, store)
        process = manager.spawn("app")
        assert process.read(Program.TEXT_BASE, 4) == b"CODE"
        assert process.read(Program.DATA_BASE, 4) == b"VARS"
        # BSS reads as zeroes past the initialised data.
        bss_start = Program.DATA_BASE + 4 * 512
        assert process.read(bss_start, 8) == bytes(8)

    def test_loaded_program_forks_correctly(self, rig):
        nucleus, mapper, store, loader = rig
        cap = mapper.register(pack_image(b"P" * 100, b"D" * 100))
        loader.load(store, "forker", cap)
        manager = ProcessManager(nucleus, store)
        parent = manager.spawn("forker")
        parent.write(Program.DATA_BASE, b"parent")
        child = parent.fork()
        child.write(Program.DATA_BASE, b"child!")
        assert parent.read(Program.DATA_BASE, 6) == b"parent"
        assert child.read(Program.DATA_BASE, 6) == b"child!"

    def test_stack_size_honoured(self, rig):
        nucleus, mapper, store, loader = rig
        cap = mapper.register(pack_image(b"T", b"D", stack_size=128 * KB))
        program = loader.load(store, "bigstack", cap)
        assert program.stack_size == 128 * KB

    def test_non_executable_rejected(self, rig):
        nucleus, mapper, store, loader = rig
        cap = mapper.register(b"#!/bin/sh\necho not a binary\n")
        with pytest.raises(InvalidOperation):
            loader.load(store, "script", cap)
