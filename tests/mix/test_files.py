"""Unix file I/O over the unified cache: the dual-caching problem
cannot occur (section 3.2)."""

import pytest

from repro.errors import InvalidOperation
from repro.gmi.types import Protection
from repro.mix.files import FileTable
from repro.nucleus import Nucleus
from repro.segments import DiskMapper, MemoryMapper, SimulatedDisk
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def rig():
    nucleus = Nucleus(memory_size=4 * MB)
    mapper = MemoryMapper()
    nucleus.register_mapper(mapper)
    files = FileTable(nucleus)
    return nucleus, mapper, files


class TestBasicCalls:
    def test_open_read_sequential(self, rig):
        nucleus, mapper, files = rig
        cap = mapper.register(b"the quick brown fox")
        fd = files.open(cap)
        assert files.read(fd, 9) == b"the quick"
        assert files.read(fd, 100) == b" brown fox"      # EOF-clamped
        assert files.read(fd, 10) == b""

    def test_write_extends_and_persists(self, rig):
        nucleus, mapper, files = rig
        cap = mapper.register(b"")
        fd = files.open(cap)
        assert files.write(fd, b"appended data") == 13
        assert files.fstat_size(fd) == 13
        files.fsync(fd)
        assert mapper.read_segment(cap.key, 0, 13) == b"appended data"

    def test_lseek_whences(self, rig):
        nucleus, mapper, files = rig
        cap = mapper.register(b"0123456789")
        fd = files.open(cap)
        assert files.lseek(fd, 4) == 4
        assert files.read(fd, 2) == b"45"
        assert files.lseek(fd, -3, whence=1) == 3
        assert files.lseek(fd, -2, whence=2) == 8
        assert files.read(fd, 2) == b"89"
        with pytest.raises(InvalidOperation):
            files.lseek(fd, -1)

    def test_pread_pwrite_do_not_move_offset(self, rig):
        nucleus, mapper, files = rig
        cap = mapper.register(b"abcdefgh")
        fd = files.open(cap)
        assert files.pread(fd, 2, 4) == b"ef"
        files.pwrite(fd, b"XY", 0)
        assert files.read(fd, 4) == b"XYcd"

    def test_bad_fd_rejected(self, rig):
        nucleus, mapper, files = rig
        with pytest.raises(InvalidOperation):
            files.read(42, 1)
        with pytest.raises(InvalidOperation):
            files.close(42)


class TestUnifiedCacheCoherence:
    """The headline property: read/write and mmap share one cache."""

    def test_write_visible_through_mapping(self, rig):
        nucleus, mapper, files = rig
        cap = mapper.register(b"original content" + bytes(PAGE))
        fd = files.open(cap)
        actor = nucleus.create_actor()
        region = files.mmap(fd, actor, length=PAGE, address=0x40000)
        assert actor.read(0x40000, 8) == b"original"
        files.pwrite(fd, b"REWRITTEN", 0)
        # No fsync needed: it is the same cache, the same frame.
        assert actor.read(0x40000, 9) == b"REWRITTEN"

    def test_mapped_store_visible_through_read(self, rig):
        nucleus, mapper, files = rig
        cap = mapper.register(bytes(PAGE))
        fd = files.open(cap)
        actor = nucleus.create_actor()
        files.mmap(fd, actor, length=PAGE, address=0x40000)
        actor.write(0x40000 + 100, b"stored via mmap")
        assert files.pread(fd, 15, 100) == b"stored via mmap"

    def test_one_frame_serves_both(self, rig):
        nucleus, mapper, files = rig
        cap = mapper.register(b"x" + bytes(PAGE))
        fd = files.open(cap)
        actor = nucleus.create_actor()
        files.mmap(fd, actor, length=PAGE, address=0x40000)
        actor.read(0x40000, 1)
        files.pread(fd, 1, 0)
        cache = files._file(fd).cache
        assert len(cache.pages) == 1           # no second buffer

    def test_two_processes_share_file_coherently(self, rig):
        nucleus, mapper, files = rig
        cap = mapper.register(bytes(PAGE))
        fd = files.open(cap)
        a, b = nucleus.create_actor(), nucleus.create_actor()
        files.mmap(fd, a, length=PAGE, address=0x40000)
        files.mmap(fd, b, length=PAGE, address=0x90000)
        a.write(0x40000, b"from a")
        assert b.read(0x90000, 6) == b"from a"


class TestDiskBackedFiles:
    def test_roundtrip_through_disk(self):
        nucleus = Nucleus(memory_size=4 * MB)
        disk = SimulatedDisk(PAGE, clock=nucleus.clock)
        mapper = DiskMapper(disk)
        nucleus.register_mapper(mapper)
        files = FileTable(nucleus)
        cap = mapper.create_file(b"on disk" + bytes(PAGE))
        fd = files.open(cap)
        assert files.read(fd, 7) == b"on disk"
        files.pwrite(fd, b"updated", 0)
        files.fsync(fd)
        files.close(fd)
        nucleus.segment_manager.drop_retained()
        # Re-open cold: the bytes really reached the disk.
        fd = files.open(cap)
        assert files.read(fd, 7) == b"updated"


class TestClose:
    def test_close_unmaps_and_releases(self, rig):
        nucleus, mapper, files = rig
        from repro.errors import SegmentationFault
        cap = mapper.register(b"z" + bytes(PAGE))
        fd = files.open(cap)
        actor = nucleus.create_actor()
        region = files.mmap(fd, actor, length=PAGE, address=0x40000)
        actor.read(0x40000, 1)
        files.close(fd)
        assert region.destroyed
        with pytest.raises(SegmentationFault):
            actor.read(0x40000, 1)
        assert files.open_count == 0

    def test_reopen_hits_warm_segment_cache(self, rig):
        nucleus, mapper, files = rig
        cap = mapper.register(b"warm file" + bytes(PAGE))
        fd = files.open(cap)
        files.read(fd, 9)
        files.close(fd)
        requests = mapper.read_requests
        fd = files.open(cap)
        assert files.read(fd, 9) == b"warm file"
        assert mapper.read_requests == requests    # served from memory
