"""Chorus/MIX: Unix process semantics (section 5.1.5)."""

import pytest

from repro.errors import StaleObject
from repro.mix import Pipe, ProcessManager, ProgramStore
from repro.mix.program import Program
from repro.nucleus import Nucleus
from repro.segments import MemoryMapper
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def rig():
    nucleus = Nucleus(memory_size=8 * MB)
    mapper = MemoryMapper()
    nucleus.register_mapper(mapper)
    store = ProgramStore(mapper, nucleus.vm.page_size)
    # sh: 2-page data; cc: a "big" program with a 64 KB data segment.
    store.install("sh", text=b"SH-TEXT " * 64, data=b"SH-DATA " * 2048)
    store.install("cc", text=b"CC-TEXT " * 512, data=b"CC-DATA " * 8192)
    manager = ProcessManager(nucleus, store)
    return nucleus, manager


class TestExec:
    def test_image_layout(self, rig):
        nucleus, manager = rig
        process = manager.spawn("sh")
        assert process.read(Program.TEXT_BASE, 7) == b"SH-TEXT"
        assert process.read(Program.DATA_BASE, 7) == b"SH-DATA"
        process.write(Program.STACK_BASE, b"stack")
        assert process.read(Program.STACK_BASE, 5) == b"stack"

    def test_text_is_read_only(self, rig):
        from repro.errors import AccessViolation
        nucleus, manager = rig
        process = manager.spawn("sh")
        with pytest.raises(AccessViolation):
            process.write(Program.TEXT_BASE, b"patch")

    def test_data_writes_do_not_touch_image(self, rig):
        nucleus, manager = rig
        a = manager.spawn("sh")
        a.write(Program.DATA_BASE, b"scribble")
        b = manager.spawn("sh")
        assert b.read(Program.DATA_BASE, 7) == b"SH-DATA"

    def test_exec_replaces_image(self, rig):
        nucleus, manager = rig
        process = manager.spawn("sh")
        process.write(Program.DATA_BASE, b"old state")
        process.exec("cc")
        assert process.read(Program.TEXT_BASE, 7) == b"CC-TEXT"
        assert process.read(Program.DATA_BASE, 7) == b"CC-DATA"

    def test_text_shared_across_processes(self, rig):
        nucleus, manager = rig
        a = manager.spawn("sh")
        b = manager.spawn("sh")
        text_cache_a = a.text_region.cache
        text_cache_b = b.text_region.cache
        assert text_cache_a is text_cache_b


class TestFork:
    def test_child_inherits_state(self, rig):
        nucleus, manager = rig
        parent = manager.spawn("sh")
        parent.write(Program.DATA_BASE, b"inherited")
        parent.write(Program.STACK_BASE + 100, b"frame")
        child = parent.fork()
        assert child.read(Program.DATA_BASE, 9) == b"inherited"
        assert child.read(Program.STACK_BASE + 100, 5) == b"frame"
        assert child.ppid == parent.pid

    def test_copy_on_write_isolation(self, rig):
        nucleus, manager = rig
        parent = manager.spawn("sh")
        parent.write(Program.DATA_BASE, b"original")
        child = parent.fork()
        child.write(Program.DATA_BASE, b"child ow")
        parent.write(Program.DATA_BASE + PAGE, b"parent 2")
        assert parent.read(Program.DATA_BASE, 8) == b"original"
        assert child.read(Program.DATA_BASE, 8) == b"child ow"
        # The parent's post-fork write is invisible to the child.
        assert child.read(Program.DATA_BASE + PAGE, 8) == b"SH-DATA "

    def test_fork_uses_history_not_eager_copy(self, rig):
        from repro.kernel.clock import CostEvent
        nucleus, manager = rig
        parent = manager.spawn("cc")           # big data segment
        for page in range(8):
            parent.write(Program.DATA_BASE + page * PAGE, b"touch")
        before = nucleus.clock.count(CostEvent.BCOPY_PAGE)
        parent.fork()
        after = nucleus.clock.count(CostEvent.BCOPY_PAGE)
        assert after == before                   # nothing copied at fork

    def test_grandchildren(self, rig):
        nucleus, manager = rig
        gen0 = manager.spawn("sh")
        gen0.write(Program.DATA_BASE, b"gen0")
        gen1 = gen0.fork()
        gen1.write(Program.DATA_BASE, b"gen1")
        gen2 = gen1.fork()
        assert gen2.read(Program.DATA_BASE, 4) == b"gen1"
        gen2.write(Program.DATA_BASE, b"gen2")
        assert gen0.read(Program.DATA_BASE, 4) == b"gen0"
        assert gen1.read(Program.DATA_BASE, 4) == b"gen1"

    def test_copy_on_reference_fork(self, rig):
        """COR fork: the child's first touch materializes a private
        page even for reads (section 4.2.2)."""
        nucleus, manager = rig
        parent = manager.spawn("sh")
        parent.write(Program.DATA_BASE, b"to inherit")
        child = manager.fork(parent, on_reference=True)
        assert child.read(Program.DATA_BASE, 10) == b"to inherit"
        child_cache = child.data_region.cache
        assert 0 in child_cache.pages         # private frame on read
        # Semantics are unchanged: isolation both ways.
        parent.write(Program.DATA_BASE, b"parent  v2")
        assert child.read(Program.DATA_BASE, 10) == b"to inherit"

    def test_shell_fork_exit_pattern(self, rig):
        """The common Unix pattern: fork, child execs and exits."""
        nucleus, manager = rig
        shell = manager.spawn("sh")
        shell.write(Program.DATA_BASE, b"shell st")
        for _ in range(5):
            child = shell.fork()
            child.exec("cc")
            child.write(Program.DATA_BASE, b"cc state")
            child.exit(0)
            assert manager.wait(shell) is child
        assert shell.read(Program.DATA_BASE, 8) == b"shell st"
        assert manager.live_processes() == 1


class TestExit:
    def test_exit_releases_everything(self, rig):
        nucleus, manager = rig
        process = manager.spawn("sh")
        process.write(Program.DATA_BASE, b"x")
        process.exit(3)
        assert process.exited and process.exit_status == 3
        with pytest.raises(StaleObject):
            process.read(Program.DATA_BASE, 1)

    def test_parent_exit_before_child(self, rig):
        nucleus, manager = rig
        parent = manager.spawn("sh")
        parent.write(Program.DATA_BASE, b"legacy")
        child = parent.fork()
        parent.exit(0)
        # 4.2.2: remaining unmodified source data kept for the copy.
        assert child.read(Program.DATA_BASE, 6) == b"legacy"
        child.exit(0)


class TestSbrk:
    def test_grow_and_use(self, rig):
        nucleus, manager = rig
        process = manager.spawn("sh")
        old_brk = process.sbrk(64 * KB)
        process.write(old_brk + 10 * KB, b"heap!")
        assert process.read(old_brk + 10 * KB, 5) == b"heap!"

    def test_sbrk_zero_queries(self, rig):
        nucleus, manager = rig
        process = manager.spawn("sh")
        assert process.sbrk(0) == process.brk

    def test_child_inherits_brk(self, rig):
        nucleus, manager = rig
        parent = manager.spawn("sh")
        parent.sbrk(32 * KB)
        child = parent.fork()
        assert child.brk == parent.brk


class TestPipes:
    def test_parent_child_pipe(self, rig):
        nucleus, manager = rig
        parent = manager.spawn("sh")
        child = parent.fork()
        pipe = Pipe(nucleus)
        pipe.write(b"from parent to child")
        assert pipe.read(20) == b"from parent to child"
        pipe.close()

    def test_large_transfer_chunks(self, rig):
        nucleus, manager = rig
        pipe = Pipe(nucleus)
        payload = bytes(range(256)) * 1024          # 256 KB > 64 KB limit
        pipe.write(payload)
        received = pipe.read(len(payload))
        assert received == payload
        assert pipe.bytes_read == len(payload)

    def test_cache_to_cache_pipe_transfer(self, rig):
        from repro.gmi.upcalls import ZeroFillProvider
        nucleus, manager = rig
        vm = nucleus.vm
        src = vm.cache_create(ZeroFillProvider(), name="src")
        src.write(0, b"bulk pipe payload")
        pipe = Pipe(nucleus)
        pipe.write_from_cache(src, 0, 2 * PAGE)
        dst = vm.cache_create(ZeroFillProvider(), name="dst")
        size = pipe.read_into_cache(dst, 0)
        assert size == 2 * PAGE
        assert dst.read(0, 17) == b"bulk pipe payload"
