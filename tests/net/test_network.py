"""Multi-site: network routing and remote mappers."""

import pytest

from repro.errors import IpcError
from repro.gmi.types import Protection
from repro.mix import ProcessManager, ProgramStore
from repro.mix.program import Program
from repro.net import Network, RemoteMapper
from repro.nucleus import Nucleus
from repro.segments import MemoryMapper
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def cluster():
    network = Network(latency_ms=2.0)
    server = Nucleus(memory_size=4 * MB)
    client = Nucleus(memory_size=4 * MB)
    network.register("server", server)
    network.register("client", client)
    file_mapper = MemoryMapper(port="files")
    server.register_mapper(file_mapper)
    proxy = RemoteMapper(network, "client", "server", "files")
    client.register_mapper(proxy)
    return network, server, client, file_mapper, proxy


class TestRouting:
    def test_duplicate_site_rejected(self, cluster):
        network, server, client, *_ = cluster
        with pytest.raises(IpcError):
            network.register("server", client)

    def test_unknown_site_rejected(self, cluster):
        network, *_ = cluster
        with pytest.raises(IpcError):
            network.send("client", "mars", "files", header={"op": "size"})

    def test_rpc_roundtrip_pays_latency_both_ends(self, cluster):
        network, server, client, file_mapper, _ = cluster
        cap = file_mapper.register(b"remote bytes")
        client_before = client.clock.now()
        server_before = server.clock.now()
        reply = network.send("client", "server", "files", header={
            "op": "read", "capability": cap, "offset": 0, "size": 6,
        })
        assert reply.inline == b"remote"
        assert client.clock.now() - client_before >= 2 * 2.0   # both ways
        assert server.clock.now() - server_before >= 2 * 2.0
        assert network.messages == 2                           # req + reply


class TestRemoteMapping:
    def test_remote_segment_mapped_locally(self, cluster):
        network, server, client, file_mapper, _ = cluster
        cap = file_mapper.register(b"served from afar" + bytes(PAGE))
        actor = client.create_actor()
        client.rgn_map(actor, cap, PAGE, address=0x40000)
        # The page fault crossed the network.
        assert actor.read(0x40000, 16) == b"served from afar"
        assert network.messages >= 2

    def test_remote_write_back(self, cluster):
        network, server, client, file_mapper, _ = cluster
        cap = file_mapper.register(bytes(PAGE))
        cache = client.segment_manager.bind(cap)
        cache.write(0, b"written remotely")
        cache.flush(0, PAGE)
        # The home site's storage changed.
        assert file_mapper.read_segment(cap.key, 0, 16) == \
            b"written remotely"

    def test_two_clients_of_one_server(self):
        network = Network()
        server = Nucleus(memory_size=4 * MB)
        network.register("server", server)
        mapper = MemoryMapper(port="files")
        server.register_mapper(mapper)
        cap = mapper.register(b"shared source of truth" + bytes(PAGE))
        clients = []
        for name in ("c1", "c2"):
            client = Nucleus(memory_size=4 * MB)
            network.register(name, client)
            client.register_mapper(
                RemoteMapper(network, name, "server", "files"))
            actor = client.create_actor()
            client.rgn_map(actor, cap, PAGE, address=0x40000,
                           protection=Protection.READ)
            clients.append(actor)
        for actor in clients:
            assert actor.read(0x40000, 6) == b"shared"

    def test_remote_exec(self, cluster):
        """A program whose image lives on another site."""
        network, server, client, file_mapper, proxy = cluster
        text_cap = file_mapper.register(b"RPROG" * 512)
        data_cap = file_mapper.register(b"RDATA" * 512)
        store = ProgramStore(proxy, client.vm.page_size)
        store.install_from_capabilities(
            "remote-prog", text_cap, 5 * 512, data_cap, 5 * 512)
        manager = ProcessManager(client, store)
        process = manager.spawn("remote-prog")
        assert process.read(Program.TEXT_BASE, 5) == b"RPROG"
        assert process.read(Program.DATA_BASE, 5) == b"RDATA"
        # Paging traffic crossed the wire.
        assert network.bytes_moved > 0
        process.exit(0)

    def test_warm_cache_avoids_network(self, cluster):
        """Segment caching (5.1.3) shields the network too."""
        network, server, client, file_mapper, _ = cluster
        cap = file_mapper.register(b"cache me" + bytes(PAGE))
        cache = client.segment_manager.bind(cap)
        cache.read(0, 8)
        traffic = network.messages
        client.segment_manager.release(cap)
        again = client.segment_manager.bind(cap)
        assert again.read(0, 8) == b"cache me"
        assert network.messages == traffic          # no new wire traffic
