"""Network edge cases: accounting, proxy validation, mixed topologies."""

import pytest

from repro.errors import CapabilityError, IpcError
from repro.ipc.message import Message
from repro.net import Network, RemoteMapper
from repro.nucleus import Nucleus
from repro.segments import Capability, MemoryMapper
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def pair():
    network = Network(latency_ms=1.0, per_kb_ms=1.0)
    left = Nucleus(memory_size=2 * MB)
    right = Nucleus(memory_size=2 * MB)
    network.register("left", left)
    network.register("right", right)
    return network, left, right


class TestAccounting:
    def test_bytes_moved_counts_payload(self, pair):
        network, left, right = pair
        right.ipc.create_port("sink", handler=lambda m: Message())
        network.send("left", "right", "sink", data=b"x" * 2048)
        assert network.bytes_moved == 2048

    def test_per_kb_cost_charged(self, pair):
        network, left, right = pair
        right.ipc.create_port("sink", handler=lambda m: Message())
        before = left.clock.now()
        network.send("left", "right", "sink", data=b"x" * 4096)
        # latency (1.0) + 4 KB x 1.0 per KB, twice (request + reply).
        assert left.clock.now() - before >= 1.0 + 4.0

    def test_self_send_charges_once(self, pair):
        """A message to one's own site still pays (loopback model) but
        does not double-charge the single clock."""
        network, left, right = pair
        left.ipc.create_port("local", handler=lambda m: Message())
        before = left.clock.now()
        network.send("left", "left", "local", data=b"1234")
        elapsed = left.clock.now() - before
        assert elapsed < 2 * (2 * (1.0 + 4 / 1024))

    def test_queued_cross_site_send(self, pair):
        """Non-server ports queue across sites too."""
        network, left, right = pair
        right.ipc.create_port("mailbox")
        assert network.send("left", "right", "mailbox",
                            data=b"posted") is None
        message = right.ipc.receive("mailbox")
        assert message.inline == b"posted"


class TestRemoteMapperValidation:
    def test_wrong_port_capability_rejected_remotely(self, pair):
        network, left, right = pair
        real = MemoryMapper(port="files")
        right.register_mapper(real)
        proxy = RemoteMapper(network, "left", "right", "files")
        left.register_mapper(proxy)
        bogus = Capability("other-mapper")
        # The remote side validates; its error propagates through the
        # synchronous RPC.
        with pytest.raises(CapabilityError):
            network.send("left", "right", "files", header={
                "op": "read", "capability": bogus,
                "offset": 0, "size": 1,
            })

    def test_segment_size_rpc(self, pair):
        network, left, right = pair
        real = MemoryMapper(port="files")
        right.register_mapper(real)
        cap = real.register(b"12345")
        proxy = RemoteMapper(network, "left", "right", "files")
        assert proxy.segment_size(cap.key) == 5

    def test_proxy_counts_requests(self, pair):
        network, left, right = pair
        real = MemoryMapper(port="files")
        right.register_mapper(real)
        cap = real.register(b"abc")
        proxy = RemoteMapper(network, "left", "right", "files")
        proxy.read_segment(cap.key, 0, 3)
        proxy.write_segment(cap.key, 0, b"xyz")
        assert proxy.read_requests == 1
        assert proxy.write_requests == 1
        assert real.read_requests == 1
        assert real.write_requests == 1


class TestTopologies:
    def test_chain_of_proxies(self):
        """left -> middle -> right: a proxy of a proxy still works."""
        network = Network(latency_ms=1.0)
        nuclei = {}
        for name in ("left", "middle", "right"):
            nuclei[name] = Nucleus(memory_size=2 * MB)
            network.register(name, nuclei[name])
        real = MemoryMapper(port="files")
        nuclei["right"].register_mapper(real)
        cap = real.register(b"end of the chain" + bytes(PAGE))
        middle_proxy = RemoteMapper(network, "middle", "right", "files")
        nuclei["middle"].register_mapper(middle_proxy)
        left_proxy = RemoteMapper(network, "left", "middle", "files")
        nuclei["left"].register_mapper(left_proxy)
        actor = nuclei["left"].create_actor()
        nuclei["left"].rgn_map(actor, cap, PAGE, address=0x40000)
        assert actor.read(0x40000, 16) == b"end of the chain"
        # Both hops were traversed.
        assert network.messages >= 4
