"""DSM over the real (simulated) network: coherence + wire costs."""

import pytest

from repro.dsm.remote import NetworkedDsm
from repro.net import Network
from repro.nucleus import Nucleus
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def cluster():
    network = Network(latency_ms=3.0)
    nuclei = {}
    for name in ("m", "a", "b"):
        nucleus = Nucleus(memory_size=2 * MB)
        network.register(name, nucleus)
        nuclei[name] = nucleus
    dsm = NetworkedDsm(network, "m", segment_pages=2, page_size=PAGE)
    sites = {name: dsm.join(name, nuclei[name]) for name in ("a", "b")}
    return network, dsm, sites


class TestRemoteCoherence:
    def test_reader_sees_remote_writers_value(self, cluster):
        network, dsm, sites = cluster
        sites["a"].write(0, b"written at a")
        assert sites["b"].read(0, 12) == b"written at a"

    def test_ownership_migrates_over_the_wire(self, cluster):
        network, dsm, sites = cluster
        sites["a"].write(0, b"version a")
        sites["b"].write(0, b"version b")
        assert dsm.manager.owner_of(0) == "b"
        # The read syncs b and downgrades the page to SHARED.
        assert sites["a"].read(0, 9) == b"version b"
        assert dsm.manager.owner_of(0) is None

    def test_protocol_pays_network_latency(self, cluster):
        network, dsm, sites = cluster
        clock_a = sites["a"].nucleus.clock
        before = clock_a.now()
        sites["a"].write(0, b"x")           # pull + grant cross the wire
        assert clock_a.now() - before >= 2 * 3.0

    def test_message_counts_scale_with_protocol(self, cluster):
        network, dsm, sites = cluster
        baseline = network.messages
        sites["a"].write(0, b"1")           # pull req/rep + grant req/rep
        after_first = network.messages
        assert after_first - baseline >= 4
        sites["a"].write(2, b"2")           # owned: no wire traffic
        assert network.messages == after_first

    def test_ping_pong_generates_sync_traffic(self, cluster):
        network, dsm, sites = cluster
        for index in range(4):
            writer = "a" if index % 2 == 0 else "b"
            sites[writer].write(0, bytes([index + 1]))
        assert sites["a"].read(0, 1) == bytes([4])
        assert dsm.manager.stats["owner_syncs"] >= 3

    def test_independent_pages_independent_owners(self, cluster):
        network, dsm, sites = cluster
        sites["a"].write(0, b"page0 by a")
        sites["b"].write(PAGE, b"page1 by b")
        assert dsm.manager.owner_of(0) == "a"
        assert dsm.manager.owner_of(1) == "b"
        assert sites["a"].read(PAGE, 10) == b"page1 by b"
        assert sites["b"].read(0, 10) == b"page0 by a"

    def test_manager_site_carries_no_user_state(self, cluster):
        """The manager's nucleus never maps the segment itself."""
        network, dsm, sites = cluster
        sites["a"].write(0, b"data")
        manager_nucleus = network.site("m")
        names = {cache.name for cache in manager_nucleus.vm.caches()}
        assert names == {"transit"}   # nothing user-visible, only IPC
