"""DSM coherence protocol over the GMI cache-control operations."""

import pytest

from repro.dsm import PageState, make_dsm_cluster
from repro.units import KB

PAGE = 8 * KB


@pytest.fixture
def cluster():
    return make_dsm_cluster(["a", "b", "c"], segment_pages=4)


class TestReadSharing:
    def test_fresh_segment_reads_zero_everywhere(self, cluster):
        manager, sites = cluster
        for site in sites.values():
            assert site.read(0, 8) == bytes(8)
        assert manager.state_of(0) is PageState.SHARED
        assert manager._entry(0).readers == {"a", "b", "c"}

    def test_reader_sees_writers_value(self, cluster):
        manager, sites = cluster
        sites["a"].write(0, b"from a")
        assert sites["b"].read(0, 6) == b"from a"
        assert sites["c"].read(0, 6) == b"from a"

    def test_read_downgrades_exclusive_owner(self, cluster):
        manager, sites = cluster
        sites["a"].write(0, b"owned")
        assert manager.state_of(0) is PageState.EXCLUSIVE
        sites["b"].read(0, 5)
        assert manager.state_of(0) is PageState.SHARED
        assert manager.owner_of(0) is None


class TestWriteOwnership:
    def test_first_write_takes_exclusive(self, cluster):
        manager, sites = cluster
        sites["b"].write(PAGE, b"mine")
        assert manager.state_of(1) is PageState.EXCLUSIVE
        assert manager.owner_of(1) == "b"

    def test_ownership_migrates(self, cluster):
        manager, sites = cluster
        sites["a"].write(0, b"first")
        sites["b"].write(0, b"secnd")
        assert manager.owner_of(0) == "b"
        assert sites["a"].read(0, 5) == b"secnd"

    def test_writes_invalidate_readers(self, cluster):
        manager, sites = cluster
        for site in sites.values():
            site.read(0, 4)
        before = manager.stats["invalidations"]
        sites["a"].write(0, b"bump")
        assert manager.stats["invalidations"] - before == 2
        assert sites["b"].read(0, 4) == b"bump"

    def test_repeated_writes_by_owner_are_local(self, cluster):
        manager, sites = cluster
        sites["a"].write(0, b"v1")
        grants = manager.stats["write_grants"]
        sites["a"].write(0, b"v2")
        sites["a"].write(2, b"v3")
        # No further protocol traffic: the page is already EXCLUSIVE.
        assert manager.stats["write_grants"] == grants

    def test_different_pages_different_owners(self, cluster):
        manager, sites = cluster
        sites["a"].write(0, b"pg0")
        sites["b"].write(PAGE, b"pg1")
        sites["c"].write(2 * PAGE, b"pg2")
        assert manager.owner_of(0) == "a"
        assert manager.owner_of(1) == "b"
        assert manager.owner_of(2) == "c"


class TestSequentialConsistency:
    def test_interleaved_updates_total_order(self, cluster):
        """Every site observes the last write, in every interleaving we
        can drive from outside."""
        manager, sites = cluster
        order = ["a", "b", "c", "b", "a", "c", "c", "a", "b"]
        for version, writer in enumerate(order):
            sites[writer].write(0, bytes([version + 1]) * 4)
            # All sites agree immediately after each write.
            values = {site.read(0, 4) for site in sites.values()}
            assert values == {bytes([version + 1]) * 4}

    def test_no_lost_updates_across_pages(self, cluster):
        manager, sites = cluster
        for round_index in range(3):
            for page, (name, site) in enumerate(sorted(sites.items())):
                site.write(page * PAGE, f"{name}{round_index}".encode())
        for page, name in enumerate(sorted(sites)):
            expected = f"{name}2".encode()
            for site in sites.values():
                assert site.read(page * PAGE, len(expected)) == expected


class TestDetach:
    def test_detach_flushes_owned_pages(self, cluster):
        manager, sites = cluster
        sites["a"].write(0, b"persist")
        manager.detach("a")
        assert sites["b"].read(0, 7) == b"persist"

    def test_detached_site_not_invalidated(self, cluster):
        manager, sites = cluster
        sites["a"].read(0, 1)
        manager.detach("a")
        before = manager.stats["invalidations"]
        sites["b"].write(0, b"x")
        assert manager.stats["invalidations"] == before


class TestProtocolCost:
    def test_ping_pong_costs_scale_with_alternations(self, cluster):
        manager, sites = cluster
        for index in range(10):
            writer = "a" if index % 2 == 0 else "b"
            sites[writer].write(0, bytes([index]))
        # Each alternation flushes+invalidates the previous owner.
        assert manager.stats["owner_syncs"] >= 9
        assert sites["c"].read(0, 1) == bytes([9])
