"""The cache engine: pluggable eviction, budgets, and the unified
drain path used by segment-cache retention drops."""

import pytest

from repro.cache import CacheEngine, ClockPolicy, FifoPolicy, LruPolicy
from repro.gmi.upcalls import ZeroFillProvider
from repro.nucleus import Nucleus
from repro.pvm import PagedVirtualMemory
from repro.segments import MemoryMapper
from repro.units import KB, MB

PAGE = 8 * KB


def run_pin_scenario(vm):
    """Touch pages 0..2, pin page 0, evict one, unpin, evict one;
    return the offsets still resident.

    Clock and LRU disagree on the second victim: the clock sweep
    skips a pinned page *without* consuming its reference bit (it
    gets its second chance once unpinned), while the LRU refresh
    consumes it — so after the unpin, clock evicts page 2 and LRU
    evicts page 0.
    """
    cache = vm.cache_create(ZeroFillProvider(), name="pin-scenario")
    for index in range(3):
        cache.write(index * PAGE, bytes([index + 1]) * 8)
    cache.lock_in_memory(0, PAGE)
    vm.reclaim_frames(1)
    cache.unlock(0, PAGE)
    vm.reclaim_frames(1)
    return {offset + step for offset, length in cache.resident_extents()
            for step in range(0, length, PAGE)}


class TestPolicySwap:
    def test_one_line_policy_swap_changes_eviction_order(self):
        # The acceptance scenario: the only difference between the two
        # systems is the policy argument, and the eviction order flips.
        clock_vm = PagedVirtualMemory(memory_size=32 * PAGE,
                                      replacement_policy=ClockPolicy())
        lru_vm = PagedVirtualMemory(memory_size=32 * PAGE,
                                    replacement_policy=LruPolicy())
        clock_resident = run_pin_scenario(clock_vm)
        lru_resident = run_pin_scenario(lru_vm)
        assert clock_resident == {0}
        assert lru_resident == {2 * PAGE}
        assert clock_resident != lru_resident

    def test_runtime_set_policy_redirects_eviction(self):
        vm = PagedVirtualMemory(memory_size=32 * PAGE,
                                replacement_policy=ClockPolicy())
        vm.policy = LruPolicy()            # live swap, pages re-registered
        assert vm.policy.name == "lru"
        assert run_pin_scenario(vm) == {2 * PAGE}

    def test_eviction_counters_carry_the_policy_label(self):
        vm = PagedVirtualMemory(memory_size=32 * PAGE,
                                replacement_policy=FifoPolicy())
        cache = vm.cache_create(ZeroFillProvider(), name="labeled")
        for index in range(4):
            cache.write(index * PAGE, b"x")
        vm.reclaim_frames(2)
        counters = vm.metrics_snapshot()["counters"]
        assert counters["pageout.evicted"] == 2
        assert counters["pageout.evicted{backend=pvm,policy=fifo}"] == 2
        assert counters["cache.evict{policy=fifo,segment=labeled}"] == 2


class TestBudget:
    def test_budget_caps_residency(self):
        # The engine enforces a policy budget below physical pressure:
        # plenty of frames, but at most 4 resident pages.
        vm = PagedVirtualMemory(memory_size=64 * PAGE)
        vm.cache_engine.budget = 4
        cache = vm.cache_create(ZeroFillProvider(), name="budgeted")
        for index in range(12):
            cache.write(index * PAGE, bytes([index + 1]) * 8)
        assert vm.resident_page_count <= 4
        # Evicted pages still read back through the provider.
        for index in range(12):
            assert cache.read(index * PAGE, 8) == bytes([index + 1]) * 8

    def test_pinned_pages_exceed_budget_rather_than_evict(self):
        vm = PagedVirtualMemory(memory_size=64 * PAGE)
        vm.cache_engine.budget = 2
        cache = vm.cache_create(ZeroFillProvider(), name="pinned")
        cache.lock_in_memory(0, 4 * PAGE)          # 4 pinned > budget 2
        for index in range(4):
            assert cache.resident_page(index * PAGE) is not None

    def test_zero_budget_keeps_only_the_incoming_page(self):
        # budget=0 is the degenerate grant: every insert overshoots,
        # and the reclaim pass must terminate (no spin) leaving at most
        # the page it was told to exclude — the one being inserted.
        vm = PagedVirtualMemory(memory_size=64 * PAGE)
        vm.cache_engine.budget = 0
        cache = vm.cache_create(ZeroFillProvider(), name="starved")
        for index in range(6):
            cache.write(index * PAGE, bytes([index + 1]) * 8)
            assert vm.resident_page_count <= 1
        # The data still round-trips through the provider.
        for index in range(6):
            assert cache.read(index * PAGE, 8) == bytes([index + 1]) * 8

    def test_zero_budget_reclaim_returns_without_progress(self):
        # An explicit reclaim against an empty residency set must
        # report zero and return (no retry loop on no-progress).
        vm = PagedVirtualMemory(memory_size=64 * PAGE)
        vm.cache_engine.budget = 0
        assert vm.cache_engine.reclaim(8) == 0

    def test_all_pinned_reclaim_terminates_without_evicting(self):
        # Every resident page pinned: the victim walk visits each page
        # once, evicts none, and returns 0 instead of spinning.
        vm = PagedVirtualMemory(memory_size=64 * PAGE)
        cache = vm.cache_create(ZeroFillProvider(), name="wired")
        cache.lock_in_memory(0, 4 * PAGE)
        resident_before = vm.resident_page_count
        assert vm.cache_engine.reclaim(4) == 0
        assert vm.resident_page_count == resident_before
        for index in range(4):
            assert cache.resident_page(index * PAGE) is not None

    def test_all_pinned_insert_under_budget_does_not_spin(self):
        # budget=1 with 4 pinned pages: inserting a fifth page finds
        # no unpinned victim except itself (excluded) — the insert
        # completes over budget rather than looping.
        vm = PagedVirtualMemory(memory_size=64 * PAGE)
        vm.cache_engine.budget = 1
        cache = vm.cache_create(ZeroFillProvider(), name="over-wired")
        cache.lock_in_memory(0, 4 * PAGE)
        cache.write(4 * PAGE, b"fifth")
        assert vm.resident_page_count >= 4
        for index in range(4):
            assert cache.resident_page(index * PAGE) is not None


class TestDrainRetained:
    def test_drop_retained_shows_in_cache_evict_counters(self):
        nucleus = Nucleus(memory_size=4 * MB, max_cached_segments=4)
        mapper = MemoryMapper()
        nucleus.register_mapper(mapper)
        capability = mapper.register(b"\x07" * (4 * PAGE))
        sm = nucleus.segment_manager
        cache = sm.bind(capability)
        cache.write(0, b"dirty")
        cache.read(PAGE, 8)
        resident = sum(length for _, length in
                       cache.resident_extents()) // PAGE
        assert resident >= 2
        sm.release(capability)
        assert sm.retained_count == 1
        assert sm.drop_retained() == 1
        counters = nucleus.vm.metrics_snapshot()["counters"]
        assert counters["cache.evict"] >= resident
        retained_series = [name for name in counters
                           if name.startswith("cache.evict{")
                           and "reason=retained" in name]
        assert retained_series, "retained drops must be labeled"
        # The dirty page went back to the mapper on the way out.
        assert mapper.write_requests >= 1
        assert mapper.read_range(capability.key, 0, 5) == b"dirty"

    def test_drain_returns_dropped_count_and_empties_cache(self):
        vm = PagedVirtualMemory(memory_size=32 * PAGE)
        cache = vm.cache_create(ZeroFillProvider(), name="drained")
        for index in range(3):
            cache.write(index * PAGE, b"d")
        dropped = vm.cache_engine.drain(cache)
        assert dropped == 3
        assert cache.resident_extents() == []
        # Data survived the drain via pushOut.
        assert cache.read(0, 1) == b"d"


class TestEngineWiring:
    def test_vm_exposes_engine_and_shared_residency(self):
        vm = PagedVirtualMemory(memory_size=32 * PAGE)
        assert isinstance(vm.cache_engine, CacheEngine)
        assert vm.residency is vm.cache_engine.residency
        assert vm.policy is vm.cache_engine.policy

    def test_unknown_policy_budget_default_off(self):
        vm = PagedVirtualMemory(memory_size=32 * PAGE)
        assert vm.cache_engine.budget is None
