"""Every backend resolves its paging through the one repro.cache
engine: same residency index, same counters, same eviction path."""

import pytest

from repro import (
    MachVirtualMemory, PagedVirtualMemory, RealTimeVirtualMemory,
)
from repro.cache import CacheEngine, ResidencyIndex
from repro.gmi.upcalls import ZeroFillProvider
from repro.units import KB

PAGE = 8 * KB

BACKENDS = [PagedVirtualMemory, MachVirtualMemory, RealTimeVirtualMemory]


@pytest.mark.parametrize("backend", BACKENDS)
class TestUnifiedCachePath:
    def test_engine_and_residency_are_wired(self, backend):
        vm = backend(memory_size=32 * PAGE)
        assert isinstance(vm.cache_engine, CacheEngine)
        assert isinstance(vm.residency, ResidencyIndex)
        assert vm.residency is vm.cache_engine.residency

    def test_faults_count_through_cache_metrics(self, backend):
        from repro.obs import RingBufferSink

        vm = backend(memory_size=32 * PAGE)
        # Hit counting (like history-depth sampling) only runs while a
        # sink is attached, keeping the untraced fault path lean.
        vm.probe.set_sink(RingBufferSink(capacity=1024))
        cache = vm.cache_create(ZeroFillProvider(), name="unified")
        for index in range(4):
            cache.write(index * PAGE, bytes([index + 1]) * 8)
        cache.read(0, 8)                            # a residency hit
        counters = vm.metrics_snapshot()["counters"]
        assert counters["cache.miss"] >= 4
        assert counters["cache.pull_in"] >= 4
        assert counters["cache.miss{segment=unified}"] >= 4
        assert counters["cache.hit{segment=unified}"] >= 1
        assert len(vm.residency) == vm.resident_page_count

    def test_flush_goes_through_cache_writeback(self, backend):
        vm = backend(memory_size=32 * PAGE)
        cache = vm.cache_create(ZeroFillProvider(), name="flushed")
        cache.write(0, b"dirty bytes")
        cache.flush(0, PAGE)
        counters = vm.metrics_snapshot()["counters"]
        assert counters["cache.writeback"] >= 1
        assert counters["cache.writeback{reason=flush,segment=flushed}"] >= 1


class TestEvictionParity:
    @pytest.mark.parametrize("backend,label", [
        (PagedVirtualMemory, "pvm"),
        (MachVirtualMemory, "mach-shadow"),
    ])
    def test_pressure_eviction_is_labeled_per_backend(self, backend, label):
        vm = backend(memory_size=8 * PAGE)
        cache = vm.cache_create(ZeroFillProvider(), name="pressure")
        for index in range(16):                     # 2x physical memory
            cache.write(index * PAGE, bytes([index + 1]) * 8)
        counters = vm.metrics_snapshot()["counters"]
        assert counters["pageout.evicted"] >= 8
        key = f"pageout.evicted{{backend={label},policy=second-chance}}"
        assert counters[key] >= 8

    def test_minimal_backend_never_evicts(self):
        vm = RealTimeVirtualMemory(memory_size=32 * PAGE)
        cache = vm.cache_create(ZeroFillProvider(), name="rt")
        for index in range(4):
            cache.write(index * PAGE, b"x")
        assert vm.reclaim_frames(2) == 0
        assert "pageout.evicted" not in vm.metrics_snapshot()["counters"]
        assert len(vm.residency) == 4
