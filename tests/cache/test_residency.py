"""The shared residency index: single writer for page tables, the
policy queue and the resident count."""

from repro.cache.eviction import FifoPolicy, LruPolicy
from repro.cache.residency import ResidencyIndex


class FakeCache:
    _next_id = 1

    def __init__(self, index):
        self.cache_id = FakeCache._next_id
        FakeCache._next_id += 1
        self.pages = index.adopt(self.cache_id)


class FakePage:
    def __init__(self, cache, offset, dirty=False):
        self.cache = cache
        self.offset = offset
        self.dirty = dirty
        self.pin_count = 0
        self.referenced = True

    @property
    def pinned(self):
        return self.pin_count > 0


def make_index():
    return ResidencyIndex(FifoPolicy())


class TestAdoptInsertRemove:
    def test_adopted_dict_is_the_live_table(self):
        index = make_index()
        cache = FakeCache(index)
        page = FakePage(cache, 0)
        index.insert(page)
        # The cache's own dict sees the insert: no copy, one table.
        assert cache.pages[0] is page
        assert len(index) == 1
        assert len(index.policy) == 1

    def test_remove_clears_all_three_views(self):
        index = make_index()
        cache = FakeCache(index)
        page = FakePage(cache, 0)
        index.insert(page)
        index.remove(page)
        assert cache.pages == {}
        assert len(index) == 0
        assert len(index.policy) == 0

    def test_reinsert_same_offset_does_not_double_count(self):
        index = make_index()
        cache = FakeCache(index)
        index.insert(FakePage(cache, 0))
        index.insert(FakePage(cache, 0))
        assert len(index) == 1


class TestRebind:
    def test_rebind_moves_page_between_tables(self):
        index = make_index()
        src, dst = FakeCache(index), FakeCache(index)
        page = FakePage(src, 0x2000)
        index.insert(page)
        index.rebind(page, dst, 0x6000)
        assert src.pages == {}
        assert dst.pages[0x6000] is page
        assert page.cache is dst and page.offset == 0x6000
        assert len(index) == 1

    def test_rebind_keeps_policy_entry(self):
        # A cache.move re-homes data; it is not an access and must not
        # churn the victim queue.
        index = make_index()
        src, dst = FakeCache(index), FakeCache(index)
        first = FakePage(src, 0)
        second = FakePage(src, 0x2000)
        index.insert(first)
        index.insert(second)
        index.rebind(first, dst, 0)
        assert next(iter(index.policy.victims())) is first
        assert len(index.policy) == 2


class TestRelease:
    def test_release_unregisters_leftovers(self):
        index = make_index()
        cache = FakeCache(index)
        index.insert(FakePage(cache, 0))
        index.insert(FakePage(cache, 0x2000))
        index.release(cache.cache_id)
        assert len(index) == 0
        assert len(index.policy) == 0
        assert cache.pages == {}

    def test_insert_after_release_revives_the_caches_own_table(self):
        # A CoW stub referencing a destroyed cache's data may resolve
        # after release; the page must land in the dict the cache
        # still holds, not a shadow copy.
        index = make_index()
        cache = FakeCache(index)
        index.release(cache.cache_id)
        page = FakePage(cache, 0)
        index.insert(page)
        assert cache.pages[0] is page
        assert index.pages_of(cache.cache_id) is cache.pages


class TestDirtyAndPolicySwap:
    def test_dirty_pages_iterates_only_dirty(self):
        index = make_index()
        cache = FakeCache(index)
        clean = FakePage(cache, 0)
        dirty = FakePage(cache, 0x2000, dirty=True)
        index.insert(clean)
        index.insert(dirty)
        assert list(index.dirty_pages()) == [dirty]

    def test_set_policy_reregisters_everything(self):
        index = make_index()
        cache = FakeCache(index)
        pages = [FakePage(cache, offset * 0x2000) for offset in range(3)]
        for page in pages:
            index.insert(page)
        replacement = LruPolicy()
        index.set_policy(replacement)
        assert index.policy is replacement
        assert len(replacement) == 3
