"""SparseStore (the one backing-store structure) and BaseMapper (the
one mapper protocol layer)."""

import pytest

from repro.cache.mapper import BaseMapper
from repro.cache.store import SparseStore
from repro.errors import CapabilityError


class TestSparseStore:
    def test_holes_read_as_zeroes(self):
        store = SparseStore(chunk_size=16)
        store.write(32, b"abc")
        assert store.read(0, 8) == bytes(8)
        assert store.read(32, 3) == b"abc"
        assert store.read(30, 7) == bytes(2) + b"abc" + bytes(2)

    def test_multi_chunk_write_lands_whole(self):
        # The regression SparseStore exists for: a range write wider
        # than one storage unit must not drop its middle.
        store = SparseStore(chunk_size=16)
        payload = bytes(range(64))
        store.write(8, payload)
        assert store.read(8, 64) == payload

    def test_size_is_high_water_mark(self):
        store = SparseStore(chunk_size=16)
        store.write(100, b"x")
        store.write(10, b"y")
        assert store.size == 101

    def test_extents_split_stored_and_holes(self):
        store = SparseStore(chunk_size=16)
        store.write(16, b"z" * 16)          # exactly chunk 1
        runs = list(store.extents(0, 48))
        assert runs == [(0, 16, False), (16, 16, True), (32, 16, False)]
        assert store.has_data(0, 48)
        assert not store.has_data(32, 16)

    def test_extents_are_maximal_runs(self):
        store = SparseStore(chunk_size=16)
        store.write(0, b"a" * 32)           # chunks 0 and 1
        assert list(store.extents(0, 32)) == [(0, 32, True)]

    def test_clear(self):
        store = SparseStore(chunk_size=16)
        store.write(0, b"data")
        store.clear()
        assert store.read(0, 4) == bytes(4)
        assert store.size == 0

    def test_rejects_bad_bounds(self):
        store = SparseStore(chunk_size=16)
        with pytest.raises(ValueError):
            store.write(-1, b"x")
        with pytest.raises(ValueError):
            store.read(-1, 4)
        with pytest.raises(ValueError):
            SparseStore(chunk_size=0)


class RecordingMapper(BaseMapper):
    """Minimal concrete mapper: one SparseStore per key, call log."""

    def __init__(self, port="recording", page_size=None):
        super().__init__(port, page_size=page_size)
        self.stores = {}
        self.range_calls = []

    def _store(self, key):
        return self.stores.setdefault(key, SparseStore())

    def read_range(self, key, offset, size):
        self.range_calls.append(("read", offset, size))
        return self._store(key).read(offset, size)

    def write_range(self, key, offset, data):
        self.range_calls.append(("write", offset, len(data)))
        self._store(key).write(offset, data)

    def segment_size(self, key):
        return self._store(key).size


class FakeCapability:
    def __init__(self, port, key=7):
        self.port = port
        self.key = key


class TestBaseMapper:
    def test_request_counters_live_in_the_base(self):
        mapper = RecordingMapper()
        mapper.write_segment(1, 0, b"hello")
        assert mapper.read_segment(1, 0, 5) == b"hello"
        assert (mapper.read_requests, mapper.write_requests) == (1, 1)

    def test_ranged_write_is_one_store_call(self):
        mapper = RecordingMapper()
        mapper.write_segment(1, 0, bytes(10 * 4096))
        assert mapper.range_calls == [("write", 0, 10 * 4096)]

    def test_unaligned_write_does_read_modify_write(self):
        mapper = RecordingMapper(page_size=64)
        mapper.write_segment(1, 0, b"A" * 64)
        mapper.write_segment(1, 10, b"BB")          # unaligned: RMW
        assert mapper.read_segment(1, 0, 64) == \
            b"A" * 10 + b"BB" + b"A" * 52
        # The RMW read goes through read_segment, so it counts — the
        # behaviour DiskMapper always had.
        assert mapper.read_requests == 2
        assert mapper.write_requests == 2

    def test_aligned_write_skips_rmw(self):
        mapper = RecordingMapper(page_size=64)
        mapper.write_segment(1, 64, b"C" * 64)
        assert mapper.read_requests == 0

    def test_capability_checking(self):
        mapper = RecordingMapper(port="here")
        assert mapper.check_capability(FakeCapability("here")) == 7
        with pytest.raises(CapabilityError):
            mapper.check_capability(FakeCapability("elsewhere"))

    def test_not_a_default_mapper_by_default(self):
        with pytest.raises(CapabilityError):
            RecordingMapper().create_temporary()
