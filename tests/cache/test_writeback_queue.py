"""The bounded write-behind queue: reservations and backpressure.

The queue is pure accounting — capacity offered at submit time on the
kernel thread, released by ``Reservation.complete()`` from wherever
the bytes finish moving.  A full queue returns ``None`` from
``offer`` and the producer writes synchronously: backpressure stalls
the producer on its own I/O instead of letting dirty memory grow
without bound.
"""

import threading

from repro.cache.writeback import WriteBehindQueue
from repro.gmi.upcalls import SegmentProvider
from repro.kernel.sync import ThreadedSync
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import Probe
from repro.pvm import PagedVirtualMemory
from repro.segments.swap_mapper import SwapMapper
from repro.units import KB, MB

PAGE = 8 * KB


class TestReservations:
    def test_offer_within_budget_reserves(self):
        queue = WriteBehindQueue(max_pages=8)
        token = queue.offer(5)
        assert token is not None
        assert queue.pending_pages == 5
        assert queue.enqueued == 5

    def test_complete_releases_capacity(self):
        queue = WriteBehindQueue(max_pages=8)
        token = queue.offer(8)
        assert queue.offer(1) is None          # full
        token.complete()
        assert queue.pending_pages == 0
        assert queue.completed == 8
        assert queue.offer(1) is not None      # capacity back

    def test_complete_is_idempotent(self):
        # The pool thread and the synchronous fallback may both call
        # complete(); capacity must be released exactly once.
        queue = WriteBehindQueue(max_pages=8)
        token = queue.offer(4)
        token.complete()
        token.complete()
        assert queue.pending_pages == 0
        assert queue.completed == 4

    def test_complete_is_thread_safe(self):
        queue = WriteBehindQueue(max_pages=1024)
        tokens = [queue.offer(1) for _ in range(256)]
        threads = [threading.Thread(target=token.complete)
                   for token in tokens]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert queue.pending_pages == 0
        assert queue.completed == 256


class TestBackpressure:
    def test_full_queue_refuses_and_counts_the_stall(self):
        queue = WriteBehindQueue(max_pages=4)
        assert queue.offer(3) is not None
        assert queue.offer(2) is None          # 3 + 2 > 4
        assert queue.stalls == 1
        assert queue.pending_pages == 3        # refused offer reserved nothing

    def test_oversized_single_offer_always_stalls(self):
        queue = WriteBehindQueue(max_pages=4)
        assert queue.offer(5) is None
        assert queue.stalls == 1

    def test_probe_counts_deferral_and_stall(self):
        registry = MetricsRegistry()
        queue = WriteBehindQueue(max_pages=4, probe=Probe(registry))
        queue.offer(3)
        queue.offer(3)
        counters = registry.snapshot()["counters"]
        assert counters["writeback.deferred"] == 3
        assert counters["writeback.stall"] == 3


class _GatedSwap(SwapMapper):
    """write_range blocks until released — pins the pool worker so
    write-behind capacity stays held deterministically."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.range_writes = 0

    def write_range(self, key, offset, data):
        assert self.gate.wait(timeout=10), "gate never released"
        self.range_writes += 1
        super().write_range(key, offset, data)


class _SwapProvider(SegmentProvider):
    """A TemporaryProvider stand-in: push_out routes its bytes through
    the manager's I/O scheduler, like the real backing-store path."""

    def __init__(self, vm, mapper):
        self.vm = vm
        self.mapper = mapper
        self.key = mapper.create_temporary().key

    def pull_in(self, cache, offset, size, access_mode):
        cache.fill_up(offset, b"\x00" * size)

    def push_out(self, cache, offset, size):
        self.vm.io.write_segment(self.mapper, self.key, offset,
                                 b"\xDD" * size)
        cache.copy_back(offset, size)

    def segment_create(self, cache):
        return "swap"


class TestEnginePushIntegration:
    def test_eviction_pushout_stalls_only_when_queue_is_full(self):
        """The fault path stalls on its own bytes exactly when the
        bounded queue is full — the tentpole's backpressure story,
        end to end through ``CacheEngine.push``."""
        vm = PagedVirtualMemory(memory_size=4 * MB, sync=ThreadedSync(),
                                io_threads=1, io_queue_pages=2)
        mapper = _GatedSwap()
        provider = _SwapProvider(vm, mapper)
        cache = vm.cache_create(provider)
        try:
            for index in range(4):
                vm.cache_write(cache, index * vm.page_size, b"dirty")
            # Two single-page writebacks fill the 2-page queue (the
            # gated mapper keeps their bytes in the pool's hands;
            # non-adjacent pages, so the count below can't be folded
            # by adjacency coalescing) ...
            for index in (0, 2):
                vm.cache_engine.push(cache, index * vm.page_size,
                                     vm.page_size, reason="writeback")
            assert vm.write_behind.pending_pages == 2
            assert vm.write_behind.stalls == 0
            # ... so the third finds the queue full and is written
            # synchronously; gated, so issue it from a helper thread.
            stalled = threading.Thread(
                target=vm.cache_engine.push,
                args=(cache, 3 * vm.page_size, vm.page_size),
                kwargs={"reason": "writeback"})
            stalled.start()
            mapper.gate.set()
            stalled.join(timeout=10)
            assert not stalled.is_alive()
            vm.io.flush()
            assert vm.write_behind.stalls == 1
            assert vm.write_behind.pending_pages == 0
            assert mapper.range_writes == 3
        finally:
            mapper.gate.set()
            vm.io.close()

    def test_synchronous_manager_never_touches_the_queue(self):
        vm = PagedVirtualMemory(memory_size=2 * MB)   # io_threads=0
        mapper = _GatedSwap()
        mapper.gate.set()
        provider = _SwapProvider(vm, mapper)
        cache = vm.cache_create(provider)
        vm.cache_write(cache, 0, b"dirty")
        vm.cache_engine.push(cache, 0, vm.page_size, reason="writeback")
        assert vm.write_behind.enqueued == 0
        assert vm.write_behind.stalls == 0
        assert mapper.range_writes == 1
