"""The minimal real-time GMI implementation (section 5.2)."""

import pytest

from repro.errors import OutOfFrames
from repro.gmi.interface import CopyPolicy
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.minimal import RealTimeVirtualMemory
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def vm():
    return RealTimeVirtualMemory(memory_size=1 * MB)


def make_cache(vm, name=None):
    return vm.cache_create(ZeroFillProvider(), name=name)


class TestFaultFreedom:
    def test_region_fully_resident_at_create(self, vm):
        ctx = vm.context_create()
        cache = make_cache(vm)
        region = ctx.region_create(0x40000, 4 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        assert region.status().resident_pages == 4
        assert all(page.pinned for page in cache.pages.values())

    def test_no_faults_after_create(self, vm):
        ctx = vm.context_create()
        cache = make_cache(vm)
        ctx.region_create(0x40000, 4 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        faults_before = vm.bus.stats.get("faults")
        for index in range(4):
            vm.user_write(ctx, 0x40000 + index * PAGE, b"deterministic")
            vm.user_read(ctx, 0x40000 + index * PAGE, 13)
        assert vm.bus.stats.get("faults") == faults_before

    def test_mmu_maps_stay_fixed(self, vm):
        """The lockInMemory guarantee, as the default."""
        ctx = vm.context_create()
        cache = make_cache(vm)
        ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        frames_before = {
            vaddr: vm.mmu.lookup(ctx.space, 0x40000 + vaddr * PAGE).frame
            for vaddr in range(2)
        }
        vm.user_write(ctx, 0x40000, b"work")
        frames_after = {
            vaddr: vm.mmu.lookup(ctx.space, 0x40000 + vaddr * PAGE).frame
            for vaddr in range(2)
        }
        assert frames_before == frames_after


class TestEagerBehaviour:
    def test_copies_are_physical(self, vm):
        src, dst = make_cache(vm, "src"), make_cache(vm, "dst")
        src.write(0, b"eager")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        assert 0 in dst.pages                      # materialised now
        src.write(0, b"later")
        assert dst.read(0, 5) == b"eager"
        assert not dst.parents and not src.guards   # no tree built

    def test_no_reclaim_under_pressure(self, vm):
        ctx = vm.context_create()
        cache = make_cache(vm)
        # 1 MB RAM = 128 frames; a 120-page region fits...
        ctx.region_create(0x100000, 120 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        # ...but the next eager region does not, and nothing is evicted.
        other = make_cache(vm)
        with pytest.raises(OutOfFrames):
            ctx.region_create(0xF00000, 16 * PAGE, protection=Protection.RW,
                              cache=other, offset=0)

    def test_failed_create_rolls_back(self, vm):
        ctx = vm.context_create()
        cache = make_cache(vm)
        ctx.region_create(0x100000, 120 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        other = make_cache(vm)
        with pytest.raises(OutOfFrames):
            ctx.region_create(0xF00000, 16 * PAGE, protection=Protection.RW,
                              cache=other, offset=0)
        # The failed region is not left behind half-created.
        assert ctx.regions_overlapping(0xF00000, 1) == []

    def test_destroy_releases_frames(self, vm):
        ctx = vm.context_create()
        cache = make_cache(vm)
        region = ctx.region_create(0x40000, 8 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        free_before = vm.memory.free_frames
        region.destroy()
        cache.destroy()
        assert vm.memory.free_frames == free_before + 8


class TestGmiCompatibility:
    def test_nucleus_runs_unchanged(self):
        """The replaceable-unit claim: the Nucleus over the RT MM."""
        from repro.nucleus import Nucleus
        nucleus = Nucleus(vm_class=RealTimeVirtualMemory,
                          memory_size=2 * MB)
        actor = nucleus.create_actor()
        region = nucleus.rgn_allocate(actor, 4 * PAGE, address=0x40000)
        actor.write(0x40000, b"rt actor")
        assert actor.read(0x40000, 8) == b"rt actor"
        assert region.status().resident_pages == 4
        nucleus.destroy_actor(actor)
