"""Rollback behaviour of the real-time MM under memory exhaustion."""

import pytest

from repro.errors import OutOfFrames
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.minimal import RealTimeVirtualMemory
from repro.units import KB, MB

PAGE = 8 * KB


def test_failed_create_leaves_no_pins_behind():
    vm = RealTimeVirtualMemory(memory_size=1 * MB)       # 128 frames
    ctx = vm.context_create()
    big = vm.cache_create(ZeroFillProvider(), name="big")
    ctx.region_create(0x100000, 120 * PAGE, protection=Protection.RW,
                      cache=big, offset=0)
    small = vm.cache_create(ZeroFillProvider(), name="small")
    with pytest.raises(OutOfFrames):
        ctx.region_create(0xF00000, 16 * PAGE, protection=Protection.RW,
                          cache=small, offset=0)
    # Nothing in the failed cache remains pinned; the frames the
    # attempt consumed were released.
    assert all(not page.pinned for page in small.pages.values())
    small.invalidate(0, 16 * PAGE)
    assert vm.memory.free_frames == 128 - 120


def test_retry_after_making_room():
    vm = RealTimeVirtualMemory(memory_size=1 * MB)
    ctx = vm.context_create()
    big = vm.cache_create(ZeroFillProvider(), name="big")
    region = ctx.region_create(0x100000, 120 * PAGE, protection=Protection.RW,
                               cache=big, offset=0)
    small = vm.cache_create(ZeroFillProvider(), name="small")
    with pytest.raises(OutOfFrames):
        ctx.region_create(0xF00000, 16 * PAGE, protection=Protection.RW,
                          cache=small, offset=0)
    small.invalidate(0, 16 * PAGE)      # drop the partial allocation
    region.destroy()
    big.destroy()
    created = ctx.region_create(0xF00000, 16 * PAGE, protection=Protection.RW,
                                cache=small, offset=0)
    assert created.status().resident_pages == 16
