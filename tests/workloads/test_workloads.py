"""The workload generators behave as their ablations assume."""

import pytest

from repro.bench import costmodel
from repro.workloads import (
    fork_exit_chain, large_make, message_sweep, shell_pipeline,
)
from repro.units import KB

PAGE = 8 * KB


class TestShellPipeline:
    def test_history_side_stays_flat(self):
        metrics = shell_pipeline(costmodel.chorus_nucleus(), generations=6)
        assert metrics.generations == 6
        assert metrics.final_chain_depth == 0
        assert metrics.virtual_ms > 0

    def test_shadow_side_grows(self):
        metrics = shell_pipeline(costmodel.mach_nucleus(auto_merge=False),
                                 generations=6)
        assert metrics.final_chain_depth == 6
        assert metrics.internal_objects >= 6

    def test_deterministic(self):
        first = shell_pipeline(costmodel.chorus_nucleus(), generations=4)
        second = shell_pipeline(costmodel.chorus_nucleus(), generations=4)
        assert first == second


class TestForkExitChain:
    def test_collapse_bounds_depth(self):
        plain = fork_exit_chain(costmodel.chorus_nucleus(), 6)
        folded = fork_exit_chain(costmodel.chorus_nucleus(), 6,
                                 collapse=True)
        assert plain.final_chain_depth == 6
        assert folded.final_chain_depth <= 1
        assert folded.merge_pages > 0

    def test_data_survives_generations(self):
        """The workload's own invariant: the last generation sees its
        ancestors' untouched pages (checked inside by the deep read)."""
        metrics = fork_exit_chain(costmodel.chorus_nucleus(), 5)
        assert metrics.source_write_ms_last_gen >= 0


class TestLargeMake:
    def test_reports_consistent_counters(self):
        metrics = large_make(costmodel.chorus_nucleus(), compilations=3)
        assert metrics.execs == 9
        assert metrics.ms_per_exec == pytest.approx(
            metrics.virtual_ms / metrics.execs)
        assert metrics.warm_hits + metrics.cold_misses > 0

    def test_caching_monotonicity(self):
        cold = large_make(
            costmodel.chorus_nucleus(max_cached_segments=0),
            compilations=3)
        warm = large_make(
            costmodel.chorus_nucleus(max_cached_segments=16),
            compilations=3)
        assert warm.virtual_ms < cold.virtual_ms
        assert warm.disk_reads < cold.disk_reads


class TestMessageSweep:
    def test_paths_assigned_by_alignment(self):
        points = message_sweep(costmodel.chorus_nucleus(),
                               [100, PAGE, PAGE + 1, 2 * PAGE])
        paths = {point.size: point.path for point in points}
        assert paths[100] == "bcopy"
        assert paths[PAGE] == "transit"
        assert paths[PAGE + 1] == "bcopy"
        assert paths[2 * PAGE] == "transit"

    def test_transit_cost_scales_with_pages(self):
        points = message_sweep(costmodel.chorus_nucleus(),
                               [PAGE, 4 * PAGE])
        cost = {point.size: point.virtual_ms_per_msg for point in points}
        assert cost[4 * PAGE] > cost[PAGE]
