"""Unit tests for the trace compiler and the ``.vmtrace`` format.

The columnar generators must be access-for-access identical to their
scalar twins in repro.workloads.traces (same seed, same RNG draw
order), and a save/load round trip must be exact on either engine —
numpy and the stdlib fallback read the same bytes.
"""

import pytest

from repro.errors import InvalidOperation
from repro.fastpath import numpy_available
from repro.workloads import tracecomp
from repro.workloads.tracecomp import (
    MAGIC, VERSION, CompiledTrace, compile_trace, load_trace, save_trace,
)
from repro.workloads.traces import (
    loop_trace, phase_trace, uniform_trace, zipf_trace,
)

ENGINES = [pytest.param(False, id="python")]
if numpy_available():
    ENGINES.insert(0, pytest.param(True, id="numpy"))

TWINS = [
    ("uniform", uniform_trace, tracecomp.uniform_columns, {}),
    ("zipf", zipf_trace, tracecomp.zipf_columns, {"skew": 1.4}),
    ("loop", loop_trace, tracecomp.loop_columns, {"write_ratio": 0.2}),
    ("phase", phase_trace, tracecomp.phase_columns,
     {"phases": 3, "locality": 5}),
]


class TestCompile:
    @pytest.mark.parametrize("use_numpy", ENGINES)
    def test_round_trips_a_scalar_trace(self, use_numpy):
        scalar = [(3, True), (0, False), (7, True), (3, False)]
        compiled = compile_trace(scalar, use_numpy=use_numpy)
        assert len(compiled) == 4
        assert compiled.to_accesses() == scalar
        assert list(compiled) == scalar
        assert compiled.backend == ("numpy" if use_numpy else "python")
        assert compiled.nbytes == 9 * 4

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(InvalidOperation, match="length mismatch"):
            CompiledTrace([1, 2, 3], b"\x00\x01")
        with pytest.raises(InvalidOperation, match="length mismatch"):
            CompiledTrace([1, 2], b"\x00\x01", spaces=[5])

    def test_spaces_column_raises_nbytes(self):
        compiled = CompiledTrace([1, 2], b"\x00\x01", spaces=[5, 5])
        assert compiled.nbytes == 17 * 2

    @pytest.mark.parametrize("use_numpy", ENGINES)
    @pytest.mark.parametrize("name,scalar_gen,column_gen,kwargs",
                             TWINS, ids=[t[0] for t in TWINS])
    def test_columnar_generators_match_their_scalar_twins(
            self, use_numpy, name, scalar_gen, column_gen, kwargs):
        scalar = scalar_gen(32, 500, seed=9, **kwargs)
        columns = column_gen(32, 500, seed=9, use_numpy=use_numpy,
                             **kwargs)
        assert columns.to_accesses() == scalar

    def test_engine_choice_never_changes_content(self):
        if not numpy_available():
            pytest.skip("needs numpy to compare engines")
        fast = tracecomp.zipf_columns(64, 300, seed=3, use_numpy=True)
        slow = tracecomp.zipf_columns(64, 300, seed=3, use_numpy=False)
        assert fast.to_accesses() == slow.to_accesses()


class TestVmtraceFormat:
    @pytest.mark.parametrize("use_numpy", ENGINES)
    def test_save_load_round_trip(self, tmp_path, use_numpy):
        trace = tracecomp.phase_columns(40, 200, seed=5,
                                        use_numpy=use_numpy)
        path = tmp_path / "t.vmtrace"
        size = save_trace(trace, str(path))
        assert size == path.stat().st_size == 16 + 9 * 200
        loaded = load_trace(str(path), use_numpy=use_numpy)
        assert loaded.to_accesses() == trace.to_accesses()

    def test_scalar_input_is_compiled_on_save(self, tmp_path):
        scalar = [(5, False), (1, True)]
        path = tmp_path / "t.vmtrace"
        save_trace(scalar, str(path))
        assert load_trace(str(path)).to_accesses() == scalar

    @pytest.mark.parametrize("use_numpy", ENGINES)
    def test_spaces_column_survives_the_disk(self, tmp_path, use_numpy):
        from array import array
        base = compile_trace([(1, True), (2, False)],
                             use_numpy=use_numpy)
        if use_numpy:
            import numpy
            spaces = numpy.array([7, 9], dtype=numpy.int64)
        else:
            spaces = array("q", [7, 9])
        trace = CompiledTrace(base.pages, base.writes, spaces=spaces,
                              backend=base.backend)
        path = tmp_path / "t.vmtrace"
        save_trace(trace, str(path))
        loaded = load_trace(str(path), use_numpy=use_numpy)
        assert list(loaded.spaces) == [7, 9]
        assert loaded.to_accesses() == [(1, True), (2, False)]

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "t.vmtrace"
        path.write_bytes(b"NOPE" + bytes(12))
        with pytest.raises(InvalidOperation, match="bad magic"):
            load_trace(str(path))

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "t.vmtrace"
        from repro.workloads.tracecomp import _HEADER
        path.write_bytes(_HEADER.pack(MAGIC, VERSION + 1, 0, 0, 0))
        with pytest.raises(InvalidOperation, match="version"):
            load_trace(str(path))

    def test_truncated_body_rejected(self, tmp_path):
        path = tmp_path / "t.vmtrace"
        trace = compile_trace([(1, False)] * 10, use_numpy=False)
        save_trace(trace, str(path))
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])
        with pytest.raises(InvalidOperation, match="truncated"):
            load_trace(str(path))

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "t.vmtrace"
        path.write_bytes(MAGIC)
        with pytest.raises(InvalidOperation, match="truncated"):
            load_trace(str(path))

    def test_numpy_and_python_read_identically(self, tmp_path):
        if not numpy_available():
            pytest.skip("needs numpy to compare engines")
        path = tmp_path / "t.vmtrace"
        save_trace(tracecomp.uniform_columns(50, 100, seed=2), str(path))
        fast = load_trace(str(path), use_numpy=True)
        slow = load_trace(str(path), use_numpy=False)
        assert fast.backend == "numpy" and slow.backend == "python"
        assert fast.to_accesses() == slow.to_accesses()
