"""Trace generators and the replay harness."""

import pytest

from repro.bench import costmodel
from repro.workloads.traces import (
    loop_trace, phase_trace, replay, uniform_trace, zipf_trace,
)
from repro.units import KB

PAGE = 8 * KB


class TestGenerators:
    def test_lengths_and_bounds(self):
        for generator in (uniform_trace, zipf_trace, loop_trace,
                          phase_trace):
            trace = generator(16, 200, seed=3)
            assert len(trace) == 200
            assert all(0 <= page < 16 for page, _ in trace)

    def test_determinism(self):
        assert zipf_trace(32, 500, seed=7) == zipf_trace(32, 500, seed=7)
        assert zipf_trace(32, 500, seed=7) != zipf_trace(32, 500, seed=8)

    def test_zipf_is_skewed(self):
        trace = zipf_trace(64, 4000, skew=1.2, seed=5)
        counts = {}
        for page, _ in trace:
            counts[page] = counts.get(page, 0) + 1
        top4 = sum(sorted(counts.values(), reverse=True)[:4])
        assert top4 > 0.4 * len(trace)       # heavy head

    def test_loop_is_sequential(self):
        trace = loop_trace(8, 20)
        assert [page for page, _ in trace] == [i % 8 for i in range(20)]

    def test_write_ratio_respected(self):
        trace = uniform_trace(16, 2000, write_ratio=0.0, seed=1)
        assert not any(is_write for _, is_write in trace)
        trace = uniform_trace(16, 2000, write_ratio=1.0, seed=1)
        assert all(is_write for _, is_write in trace)

    def test_phase_trace_has_locality(self):
        trace = phase_trace(128, 400, phases=4, locality=8, seed=2)
        quarter = len(trace) // 4
        for phase in range(4):
            pages = {page for page, _ in
                     trace[phase * quarter:(phase + 1) * quarter]}
            assert len(pages) <= 8


class TestReplay:
    def test_fits_in_ram_no_steady_state_faults(self):
        nucleus = costmodel.chorus_nucleus(memory_size=64 * PAGE)
        trace = zipf_trace(16, 300, seed=4)
        result = replay(nucleus, trace, pages=16, prewarm=True)
        assert result.accesses == 300
        assert result.faults == 0

    def test_pressure_produces_faults(self):
        nucleus = costmodel.chorus_nucleus(memory_size=16 * PAGE)
        trace = loop_trace(32, 300, seed=4)
        result = replay(nucleus, trace, pages=32, prewarm=True)
        assert result.faults > 0
        assert result.pull_ins >= result.faults * 0.5
        assert result.virtual_ms > 0

    def test_skew_faults_less_than_uniform_under_pressure(self):
        """Locality pays: zipf traffic mostly hits the resident head."""
        def rate(trace):
            nucleus = costmodel.chorus_nucleus(memory_size=20 * PAGE)
            return replay(nucleus, trace, pages=48,
                          prewarm=True).fault_rate

        zipf_rate = rate(zipf_trace(48, 600, skew=1.4, seed=9))
        uniform_rate = rate(uniform_trace(48, 600, seed=9))
        assert zipf_rate < uniform_rate

    def test_replay_cleans_up(self):
        nucleus = costmodel.chorus_nucleus(memory_size=32 * PAGE)
        replay(nucleus, uniform_trace(8, 50, seed=1), pages=8)
        assert len(nucleus.actors) == 0


class TestVectorizedReplay:
    def test_matches_scalar_result_under_pressure(self):
        # Same trace, twin nuclei: the vectorized path must report
        # identical fault statistics and virtual time even when the
        # working set evicts (tests/property/test_vbus_parity.py pins
        # the full observational equivalence; this is the replay()
        # wiring).
        trace = zipf_trace(32, 400, seed=6)
        scalar = replay(costmodel.chorus_nucleus(memory_size=16 * PAGE),
                        trace, pages=32, prewarm=True)
        vector = replay(costmodel.chorus_nucleus(memory_size=16 * PAGE),
                        trace, pages=32, prewarm=True, vectorized=True)
        assert vector == scalar
        assert vector.faults > 0

    def test_accepts_a_compiled_trace(self):
        from repro.workloads.tracecomp import zipf_columns
        compiled = zipf_columns(16, 300, seed=4)
        nucleus = costmodel.chorus_nucleus(memory_size=64 * PAGE)
        result = replay(nucleus, compiled, pages=16, prewarm=True,
                        vectorized=True)
        assert result.accesses == 300
        assert result.faults == 0
        assert len(nucleus.actors) == 0

    def test_unaligned_base_rejected(self):
        from repro.errors import InvalidOperation
        nucleus = costmodel.chorus_nucleus(memory_size=32 * PAGE)
        with pytest.raises(InvalidOperation, match="page-aligned"):
            replay(nucleus, [(0, False)], pages=1, base=0x100080,
                   vectorized=True)

    def test_records_the_access_gauge(self):
        nucleus = costmodel.chorus_nucleus(memory_size=32 * PAGE)
        replay(nucleus, loop_trace(8, 120, seed=2), pages=8,
               vectorized=True)
        registry = nucleus.vm.probe.registry
        assert registry.gauge_value("trace.accesses") == 120.0
