"""The pressure-policy layer: arbiter, estimator, throttle, gate.

Unit tests over the pure-arithmetic pieces (no manager needed) plus
the engine-side admission gate on a real virtual clock.  The
end-to-end balancer behaviour over a live PVM lives in
``test_balancer.py``; the fairness state machine in
``tests/property/test_balancer_model.py``.
"""

import pytest

from repro.engine import AdmissionGate
from repro.kernel.clock import VirtualClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.pressure import PressureBoard
from repro.pressure import (
    AdmissionController, FrameArbiter, WorkingSetEstimator,
)


class TestFrameArbiterInert:
    def test_inert_by_default(self):
        arbiter = FrameArbiter()
        assert not arbiter.active
        assert arbiter.overshoot(10_000) == 0

    def test_inert_adopt_is_a_no_op(self):
        arbiter = FrameArbiter()
        arbiter.adopt(1)
        assert arbiter.grants == {}

    def test_grant_defaults_to_floor(self):
        arbiter = FrameArbiter(floor_pages=6)
        assert arbiter.grant_of(42) == 6


class TestFrameArbiterCharges:
    def test_charge_and_release_round_trip(self):
        arbiter = FrameArbiter(global_budget=16)
        arbiter.charge(1)
        arbiter.charge(1)
        arbiter.charge(None)
        assert arbiter.charged_of(1) == 2
        assert arbiter.charged_of(None) == 1
        arbiter.release(1)
        arbiter.release(1)
        assert arbiter.charged_of(1) == 0
        assert 1 not in arbiter.charged

    def test_release_tolerates_unknown_space(self):
        arbiter = FrameArbiter(global_budget=16)
        arbiter.release(99)                      # never charged: no-op
        assert arbiter.charged_of(99) == 0

    def test_charge_adopts_newborn_at_floor(self):
        arbiter = FrameArbiter(global_budget=16, floor_pages=4)
        arbiter.charge(7)
        assert arbiter.grants == {7: 4}

    def test_overshoot_is_resident_minus_budget(self):
        arbiter = FrameArbiter(global_budget=8)
        assert arbiter.overshoot(11) == 3
        assert arbiter.overshoot(8) == 0
        assert arbiter.overshoot(2) == 0


class TestAdoptionSkim:
    def test_adopt_skims_largest_grants(self):
        # Budget 12, floor 2: two incumbents at 8 and 4; the newborn's
        # floor is funded from the largest grant.
        arbiter = FrameArbiter(global_budget=12, floor_pages=2)
        arbiter.grants.update({1: 8, 2: 4})
        arbiter.adopt(3)
        assert sum(arbiter.grants.values()) <= 12
        assert arbiter.grants[3] == 2
        assert arbiter.grants[1] < 8            # the big grant paid

    def test_floors_win_when_budget_cannot_cover_them(self):
        arbiter = FrameArbiter(global_budget=4, floor_pages=4)
        arbiter.adopt(1)
        arbiter.adopt(2)
        # 2 floors of 4 over a budget of 4: no donor above the floor,
        # so the sum exceeds the budget — starvation protection wins.
        assert arbiter.grants == {1: 4, 2: 4}

    def test_drop_space_orphans_charges(self):
        arbiter = FrameArbiter(global_budget=16)
        arbiter.charge(5)
        arbiter.charge(5)
        arbiter.drop_space(5)
        assert 5 not in arbiter.grants
        assert arbiter.charged_of(5) == 0
        assert arbiter.charged_of(None) == 2


class TestRefaultMemory:
    def test_pull_after_eviction_counts_as_refault(self):
        arbiter = FrameArbiter(global_budget=16)
        arbiter.note_evicted(1, 0x0000, space=3)
        arbiter.note_evicted(1, 0x2000, space=3)
        hits = arbiter.note_pull(1, 0x0000, pages=2, page_size=0x2000,
                                 space=3)
        assert hits == 2
        assert arbiter.refaults[3] == 2
        assert arbiter.total_refaults == 2

    def test_cold_pull_is_not_a_refault(self):
        arbiter = FrameArbiter(global_budget=16)
        assert arbiter.note_pull(1, 0, 4, 0x2000, space=1) == 0
        assert arbiter.total_refaults == 0

    def test_refault_memory_is_bounded(self):
        arbiter = FrameArbiter(global_budget=16, refault_horizon=4)
        for index in range(10):
            arbiter.note_evicted(1, index * 0x2000, space=1)
        # Only the four newest survive; the oldest aged out.
        assert arbiter.note_pull(1, 0, 1, 0x2000, space=1) == 0
        assert arbiter.note_pull(1, 9 * 0x2000, 1, 0x2000, space=1) == 1

    def test_refault_consumed_once(self):
        arbiter = FrameArbiter(global_budget=16)
        arbiter.note_evicted(2, 0, space=1)
        assert arbiter.note_pull(2, 0, 1, 0x2000, space=1) == 1
        assert arbiter.note_pull(2, 0, 1, 0x2000, space=1) == 0


class TestWorkingSetEstimator:
    def test_single_sample_estimates_residency(self):
        ws = WorkingSetEstimator()
        ws.observe(1, now=0.0, resident=10, faults=10, refaults=0)
        assert ws.refault_rate(1) == 0
        assert ws.wss(1) == 10

    def test_windowed_refaults_grow_the_estimate(self):
        ws = WorkingSetEstimator(window_ms=60.0)
        ws.observe(1, 0.0, resident=10, faults=10, refaults=0)
        ws.observe(1, 30.0, resident=10, faults=25, refaults=5)
        assert ws.refault_rate(1) == 5
        assert ws.fault_rate(1) == 15
        assert ws.wss(1) == 15

    def test_old_samples_age_out_of_the_window(self):
        ws = WorkingSetEstimator(window_ms=60.0)
        ws.observe(1, 0.0, resident=10, faults=0, refaults=0)
        ws.observe(1, 10.0, resident=10, faults=0, refaults=8)
        ws.observe(1, 100.0, resident=10, faults=0, refaults=8)
        ws.observe(1, 120.0, resident=10, faults=0, refaults=8)
        # The refault burst at t=10 left the trailing 60ms window.
        assert ws.refault_rate(1) == 0
        assert ws.wss(1) == 10

    def test_watermarks_bracket_the_estimate(self):
        ws = WorkingSetEstimator(high_factor=1.25, low_factor=0.5)
        ws.observe(1, 0.0, resident=8, faults=0, refaults=0)
        assert ws.high(1) == 10
        assert ws.low(1) == 4

    def test_drop_space_forgets_samples(self):
        ws = WorkingSetEstimator()
        ws.observe(1, 0.0, resident=8, faults=0, refaults=0)
        ws.drop_space(1)
        assert ws.wss(1) == 0


class TestAdmissionController:
    def test_no_limits_no_penalty(self):
        qos = AdmissionController()
        assert qos.penalty(1, now=5.0) == 0.0

    def test_window_limit_delays_the_overflow_fault(self):
        qos = AdmissionController(window_ms=10.0, fault_limit=2)
        assert qos.penalty(1, 0.0) == 0.0
        assert qos.penalty(1, 1.0) == 0.0
        # Third fault inside the window: wait until the first admission
        # (t=0) leaves the 10ms window.
        assert qos.penalty(1, 2.0) == pytest.approx(8.0)
        assert qos.delayed == 1

    def test_window_limits_are_per_space(self):
        qos = AdmissionController(window_ms=10.0, fault_limit=1)
        assert qos.penalty(1, 0.0) == 0.0
        assert qos.penalty(2, 0.0) == 0.0        # other space unaffected
        assert qos.penalty(1, 1.0) > 0.0

    def test_suspension_backoff_doubles_to_the_cap(self):
        qos = AdmissionController(backoff_ms=0.5, backoff_limit_ms=2.0)
        assert qos.suspend(1, 0.0) == pytest.approx(0.5)
        assert qos.suspend(1, 0.0) == pytest.approx(1.0)
        assert qos.suspend(1, 0.0) == pytest.approx(2.0)
        assert qos.suspend(1, 0.0) == pytest.approx(2.0)   # capped
        assert qos.suspensions == 4

    def test_suspended_fault_pays_the_remainder(self):
        qos = AdmissionController(backoff_ms=4.0)
        qos.suspend(1, now=10.0)                 # lifts at 14.0
        assert qos.penalty(1, 11.0) == pytest.approx(3.0)

    def test_expired_suspension_keeps_backoff_until_resume(self):
        qos = AdmissionController(backoff_ms=0.5)
        qos.suspend(1, 0.0)
        assert qos.penalty(1, 5.0) == 0.0        # suspension expired
        assert not qos.suspended(1, 5.0)
        assert qos.backoff_of(1) == pytest.approx(0.5)
        # A re-suspension escalates from the remembered backoff...
        qos.suspend(1, 5.0)
        assert qos.backoff_of(1) == pytest.approx(1.0)
        # ...until the balancer sees calm and resumes.
        qos.resume(1)
        assert qos.backoff_of(1) == 0.0


class TestAdmissionGate:
    def test_zero_penalty_leaves_the_clock_alone(self):
        clock = VirtualClock()
        gate = AdmissionGate(AdmissionController(), clock)
        assert gate.admit(1) == 0.0
        assert clock.now() == 0.0

    def test_delay_advances_the_clock_and_notes_the_stall(self):
        clock = VirtualClock()
        board = PressureBoard(MetricsRegistry(), clock.now)
        qos = AdmissionController(backoff_ms=2.0)
        gate = AdmissionGate(qos, clock, board=board)
        qos.suspend(1, clock.now())
        before = clock.now()
        delay = gate.admit(1)
        assert delay == pytest.approx(2.0)
        assert clock.now() == pytest.approx(before + 2.0)
        # Throttle stalls are counted but zero-duration: the
        # psi.memory windows stay pure memory stalls.
        assert board.stall_counts.get("throttle") == 1
        assert board.full.total_ms == 0.0
