"""The balancer daemon and frame arbiter over a live PVM.

End-to-end behaviour of the pressure-policy stack wired into the
manager: space-attributed charging at insert time, grant enforcement
through targeted reclaim, floor protection under QoS mode, thrash
suspension through the admission gate, and teardown bookkeeping.
"""

import pytest

from repro.engine import AdmissionGate
from repro.gmi.upcalls import ZeroFillProvider
from repro.gmi.types import Protection
from repro.pressure import (
    AdmissionController, BalancerDaemon, FrameArbiter, WorkingSetEstimator,
)
from repro.pvm import PagedVirtualMemory
from repro.units import KB

PAGE = 8 * KB
BASE = 0x0100_0000


def build_vm(budget=None, floor=2, ws=False, qos=None, memory_pages=64):
    arbiter = FrameArbiter(
        global_budget=budget, floor_pages=floor,
        ws=WorkingSetEstimator() if ws else None, qos=qos)
    return PagedVirtualMemory(memory_size=memory_pages * PAGE,
                              arbiter=arbiter)


def add_space(vm, name, pages):
    """One context with its own anonymous heap region."""
    heap = vm.cache_create(ZeroFillProvider(), name=f"{name}.heap")
    context = vm.context_create(name)
    context.region_create(BASE, pages * PAGE, protection=Protection.RW,
                          cache=heap, offset=0)
    return context


def touch(vm, context, pages, stamp=1):
    context.switch()
    for index in range(pages):
        vm.user_write(context, BASE + index * PAGE, bytes([stamp]))


class TestWiring:
    def test_vm_exposes_the_engine_arbiter(self):
        vm = build_vm(budget=16)
        assert vm.arbiter is vm.cache_engine.arbiter
        assert vm.arbiter.active

    def test_no_qos_means_no_admission_gate(self):
        assert build_vm(budget=16).admission is None

    def test_qos_wires_an_admission_gate(self):
        vm = build_vm(budget=16, qos=AdmissionController())
        assert isinstance(vm.admission, AdmissionGate)

    def test_default_vm_arbiter_is_inert(self):
        vm = PagedVirtualMemory(memory_size=16 * PAGE)
        assert not vm.arbiter.active


class TestChargeAttribution:
    def test_faulted_pages_are_charged_to_the_faulting_space(self):
        vm = build_vm(budget=32)
        a = add_space(vm, "a", 4)
        b = add_space(vm, "b", 6)
        touch(vm, a, 4)
        touch(vm, b, 6)
        assert vm.arbiter.charged_of(a.space) == 4
        assert vm.arbiter.charged_of(b.space) == 6

    def test_eviction_releases_the_charge(self):
        vm = build_vm(budget=32)
        a = add_space(vm, "a", 8)
        touch(vm, a, 8)
        vm.reclaim_frames(3)
        assert vm.arbiter.charged_of(a.space) == 5

    def test_unattributed_inserts_charge_the_none_bucket(self):
        vm = build_vm(budget=32)
        cache = vm.cache_create(ZeroFillProvider(), name="kernel")
        cache.write(0, b"x")                      # no faulting task
        assert vm.arbiter.charged_of(None) == 1

    def test_context_destroy_drops_the_space(self):
        vm = build_vm(budget=32)
        a = add_space(vm, "a", 4)
        touch(vm, a, 4)
        space = a.space
        vm.context_destroy(a)
        assert space not in vm.arbiter.grants
        assert vm.arbiter.charged_of(space) == 0


class TestBudgetEnforcement:
    def test_global_budget_caps_aggregate_residency(self):
        vm = build_vm(budget=8)
        a = add_space(vm, "a", 8)
        b = add_space(vm, "b", 8)
        touch(vm, a, 8)
        touch(vm, b, 8)
        assert vm.resident_page_count <= 8

    def test_legacy_budget_property_aliases_the_arbiter(self):
        vm = build_vm()
        vm.cache_engine.budget = 4
        assert vm.arbiter.global_budget == 4
        assert vm.arbiter.active


class TestBalancerTick:
    def test_inert_arbiter_makes_tick_a_no_op(self):
        vm = PagedVirtualMemory(memory_size=16 * PAGE)
        assert BalancerDaemon(vm).tick() == {"active": False}

    def test_grants_cover_every_live_space_at_floor_or_above(self):
        vm = build_vm(budget=24, floor=2, ws=True)
        spaces = [add_space(vm, f"s{i}", 10) for i in range(4)]
        for context in spaces:
            touch(vm, context, 10)
        daemon = BalancerDaemon(vm)
        result = daemon.tick()
        grants = result["grants"]
        assert set(grants) == {context.space for context in spaces}
        assert all(grant >= 2 for grant in grants.values())
        assert sum(grants.values()) <= 24

    def test_enforcement_shrinks_over_grant_spaces(self):
        vm = build_vm(budget=16, floor=2, ws=True)
        hog = add_space(vm, "hog", 14)
        small = add_space(vm, "small", 4)
        touch(vm, hog, 14)
        touch(vm, small, 4)
        daemon = BalancerDaemon(vm)
        daemon.tick()
        arbiter = vm.arbiter
        assert vm.resident_page_count <= 16
        assert arbiter.charged_of(hog.space) \
            <= arbiter.grant_of(hog.space) + 1
        # The small space was not collateral damage.
        assert arbiter.charged_of(small.space) >= 2

    def test_targeted_reclaim_spares_other_spaces(self):
        vm = build_vm(budget=32, ws=True)
        a = add_space(vm, "a", 6)
        b = add_space(vm, "b", 6)
        touch(vm, a, 6)
        touch(vm, b, 6)
        freed = vm.cache_engine.reclaim(4, from_spaces={a.space})
        assert freed == 4
        assert vm.arbiter.charged_of(a.space) == 2
        assert vm.arbiter.charged_of(b.space) == 6

    def test_untargeted_reclaim_protects_floors_in_qos_mode(self):
        vm = build_vm(budget=32, floor=4, ws=True)
        a = add_space(vm, "a", 6)
        touch(vm, a, 6)
        # Ask for more than the space can yield above its floor.
        vm.cache_engine.reclaim(6)
        assert vm.arbiter.charged_of(a.space) >= 4


class TestThrashControl:
    def build_thrashing_vm(self):
        qos = AdmissionController(backoff_ms=1.0)
        vm = build_vm(budget=8, floor=2, ws=True, qos=qos,
                      memory_pages=64)
        thrasher = add_space(vm, "thrasher", 24)
        quiet = add_space(vm, "quiet", 4)
        return vm, thrasher, quiet

    def test_worst_refaulter_is_suspended(self):
        vm, thrasher, quiet = self.build_thrashing_vm()
        daemon = BalancerDaemon(vm, full_threshold=0.0,
                                refault_threshold=1)
        touch(vm, quiet, 4)
        # Stream the thrasher over a set far beyond the budget twice:
        # the second pass is refaults of the first's evictions.
        for round_no in range(3):
            touch(vm, thrasher, 24, stamp=round_no + 1)
            result = daemon.tick()
        assert result["suspended"] == thrasher.space
        assert vm.arbiter.qos.suspended(thrasher.space, vm.clock.now())

    def test_suspended_space_pays_its_delay_at_the_next_fault(self):
        vm, thrasher, quiet = self.build_thrashing_vm()
        daemon = BalancerDaemon(vm, full_threshold=0.0,
                                refault_threshold=1)
        for round_no in range(3):
            touch(vm, thrasher, 24, stamp=round_no + 1)
            daemon.tick()
        before = vm.clock.now()
        touch(vm, thrasher, 1, stamp=9)
        counters = vm.metrics_snapshot()["counters"]
        assert counters.get("throttle.delays", 0) >= 1
        assert vm.clock.now() > before

    def test_calm_space_is_resumed_and_backoff_reset(self):
        vm, thrasher, quiet = self.build_thrashing_vm()
        daemon = BalancerDaemon(vm, full_threshold=0.0,
                                refault_threshold=1)
        for round_no in range(3):
            touch(vm, thrasher, 24, stamp=round_no + 1)
            daemon.tick()
        qos = vm.arbiter.qos
        assert qos.backoff_of(thrasher.space) > 0.0
        # Let the storm subside: ticks with no new refaults age the
        # window out, and the balancer resumes the space.
        for _ in range(8):
            vm.clock.advance(30.0)
            daemon.tick()
        assert qos.backoff_of(thrasher.space) == 0.0


class TestPublication:
    def test_snapshot_carries_balancer_and_ws_gauges(self):
        vm = build_vm(budget=16, ws=True)
        a = add_space(vm, "a", 4)
        touch(vm, a, 4)
        BalancerDaemon(vm).tick()
        gauges = vm.metrics_snapshot()["gauges"]
        assert gauges["balancer.budget"] == 16.0
        assert gauges[f"balancer.grant{{space={a.space}}}"] >= 2.0
        assert gauges[f"balancer.charged{{space={a.space}}}"] == 4.0
        assert f"ws.estimate{{space={a.space}}}" in gauges

    def test_inert_arbiter_publishes_nothing(self):
        vm = PagedVirtualMemory(memory_size=16 * PAGE)
        a = add_space(vm, "a", 2)
        touch(vm, a, 2)
        gauges = vm.metrics_snapshot()["gauges"]
        assert not any(name.startswith(("balancer.", "ws.", "throttle."))
                       for name in gauges)
