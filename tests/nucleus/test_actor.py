"""Actor lifecycle semantics."""

import pytest

from repro.errors import IpcError, StaleObject
from repro.nucleus import Nucleus
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def nucleus():
    return Nucleus(memory_size=2 * MB)


class TestActorLifecycle:
    def test_actor_has_context_and_port(self, nucleus):
        actor = nucleus.create_actor("worker")
        assert actor.context in nucleus.vm.contexts()
        assert nucleus.ipc.lookup_port(actor.port.name) is actor.port

    def test_names_unique_by_default(self, nucleus):
        names = {nucleus.create_actor().name for _ in range(5)}
        assert len(names) == 5

    def test_destroy_tears_down_everything(self, nucleus):
        actor = nucleus.create_actor("victim")
        nucleus.rgn_allocate(actor, PAGE, address=0x40000)
        actor.write(0x40000, b"x")
        port_name = actor.port.name
        nucleus.destroy_actor(actor)
        assert not actor.alive
        assert actor.context.destroyed
        with pytest.raises(IpcError):
            nucleus.ipc.lookup_port(port_name)

    def test_access_after_destroy_rejected(self, nucleus):
        actor = nucleus.create_actor()
        nucleus.rgn_allocate(actor, PAGE, address=0x40000)
        nucleus.destroy_actor(actor)
        with pytest.raises(StaleObject):
            actor.read(0x40000, 1)
        with pytest.raises(StaleObject):
            actor.write(0x40000, b"x")

    def test_double_destroy_rejected(self, nucleus):
        actor = nucleus.create_actor()
        nucleus.destroy_actor(actor)
        with pytest.raises(StaleObject):
            actor.destroy()

    def test_actor_messaging_via_its_port(self, nucleus):
        actor = nucleus.create_actor("server")
        nucleus.ipc.send(actor.port.name, data=b"for the actor")
        message = nucleus.ipc.receive(actor.port.name)
        assert message.inline == b"for the actor"

    def test_many_actors_isolated_spaces(self, nucleus):
        actors = [nucleus.create_actor() for _ in range(4)]
        for index, actor in enumerate(actors):
            nucleus.rgn_allocate(actor, PAGE, address=0x40000)
            actor.write(0x40000, bytes([index + 1]) * 4)
        for index, actor in enumerate(actors):
            assert actor.read(0x40000, 4) == bytes([index + 1]) * 4
