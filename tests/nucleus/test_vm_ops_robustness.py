"""Robustness of the Nucleus rgn* operations against misuse."""

import pytest

from repro.errors import InvalidOperation, StaleObject
from repro.gmi.types import Protection
from repro.nucleus import Nucleus
from repro.segments import Capability, MemoryMapper
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def nucleus():
    return Nucleus(memory_size=2 * MB)


@pytest.fixture
def actor(nucleus):
    return nucleus.create_actor()


class TestBadArguments:
    def test_zero_size_allocate_rounds_up(self, nucleus, actor):
        region = nucleus.rgn_allocate(actor, 1)
        assert region.size == PAGE

    def test_overlapping_explicit_addresses_rejected(self, nucleus, actor):
        nucleus.rgn_allocate(actor, 2 * PAGE, address=0x40000)
        with pytest.raises(InvalidOperation):
            nucleus.rgn_allocate(actor, PAGE, address=0x40000 + PAGE)
        # The failed attempt leaked nothing: mapping count unchanged.
        assert len(actor.mappings) == 1

    def test_unknown_capability_port_fails_at_fault_time(self, nucleus,
                                                         actor):
        from repro.errors import IpcError
        ghost = Capability("no-such-mapper")
        region = nucleus.rgn_map(actor, ghost, PAGE, address=0x40000)
        with pytest.raises(IpcError):
            actor.read(0x40000, 1)

    def test_ops_on_dead_actor_rejected(self, nucleus, actor):
        nucleus.destroy_actor(actor)
        with pytest.raises(StaleObject):
            nucleus.rgn_allocate(actor, PAGE)

    def test_double_rgn_free_rejected(self, nucleus, actor):
        region = nucleus.rgn_allocate(actor, PAGE, address=0x40000)
        nucleus.rgn_free(actor, region)
        with pytest.raises(InvalidOperation):
            nucleus.rgn_free(actor, region)


class TestResourceBalance:
    def test_allocate_free_cycle_leaks_nothing(self, nucleus, actor):
        frames_before = nucleus.vm.memory.allocated_frames
        caches_before = len(nucleus.vm.caches())
        for _ in range(10):
            region = nucleus.rgn_allocate(actor, 4 * PAGE,
                                          address=0x40000)
            actor.write(0x40000, b"touch")
            nucleus.rgn_free(actor, region)
        assert nucleus.vm.memory.allocated_frames == frames_before
        assert len(nucleus.vm.caches()) == caches_before

    def test_fork_exit_cycle_leaks_nothing(self, nucleus):
        mapper = MemoryMapper()
        nucleus.register_mapper(mapper)
        from repro.mix import ProcessManager, ProgramStore
        store = ProgramStore(mapper, PAGE)
        store.install("p", text=b"T" * 256, data=b"D" * 256)
        manager = ProcessManager(nucleus, store)
        parent = manager.spawn("p")
        parent.write(0x1000000, b"state")
        caches_before = len(nucleus.vm.caches())
        for _ in range(8):
            child = parent.fork()
            child.write(0x1000000, b"child")
            child.exit(0)
            manager.wait(parent)
        # History machinery unwound completely each time.
        assert len(nucleus.vm.caches()) <= caches_before + 1
        assert parent.read(0x1000000, 5) == b"state"

    def test_mapped_segment_release_returns_to_retention(self, nucleus,
                                                         actor):
        mapper = MemoryMapper()
        nucleus.register_mapper(mapper)
        cap = mapper.register(b"retained")
        region = nucleus.rgn_map(actor, cap, PAGE, address=0x40000)
        retained_before = nucleus.segment_manager.retained_count
        nucleus.rgn_free(actor, region)
        assert nucleus.segment_manager.retained_count == \
            retained_before + 1
