"""Deterministic threads: round-robin, blocking receive, join."""

import pytest

from repro.errors import InvalidOperation, IpcError
from repro.nucleus import Nucleus
from repro.nucleus.threads import Join, Recv, Scheduler
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def nucleus():
    return Nucleus(memory_size=2 * MB)


@pytest.fixture
def sched(nucleus):
    return Scheduler(nucleus)


class TestBasicScheduling:
    def test_round_robin_interleaves(self, sched):
        log = []

        def worker(tag):
            for step in range(3):
                log.append((tag, step))
                yield

        sched.spawn(worker, "a")
        sched.spawn(worker, "b")
        sched.run()
        assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1),
                       ("a", 2), ("b", 2)]

    def test_return_values_via_join(self, sched):
        def computer():
            yield
            return 42

        def joiner(thread):
            result = yield Join(thread)
            return result * 2

        worker = sched.spawn(computer)
        waiter = sched.spawn(joiner, worker)
        sched.run()
        assert worker.result == 42
        assert waiter.result == 84

    def test_non_generator_rejected(self, sched):
        with pytest.raises(InvalidOperation):
            sched.spawn(lambda: 5)

    def test_deterministic_replay(self, nucleus):
        def build_and_run():
            sched = Scheduler(nucleus)
            log = []

            def worker(tag):
                for _ in range(2):
                    log.append(tag)
                    yield

            for tag in "xyz":
                sched.spawn(worker, tag)
            sched.run()
            return log

        assert build_and_run() == build_and_run()


class TestBlockingReceive:
    def test_consumer_blocks_until_producer_sends(self, nucleus, sched):
        nucleus.ipc.create_port("queue")
        received = []

        def consumer():
            for _ in range(3):
                message = yield Recv("queue")
                received.append(message.inline)

        def producer():
            for index in range(3):
                nucleus.ipc.send("queue", data=bytes([index]))
                yield

        sched.spawn(consumer)
        sched.spawn(producer)
        sched.run()
        assert received == [b"\x00", b"\x01", b"\x02"]

    def test_receive_into_cache(self, nucleus, sched):
        from repro.gmi.upcalls import ZeroFillProvider
        vm = nucleus.vm
        src = vm.cache_create(ZeroFillProvider(), name="src")
        src.write(0, b"threaded transit")
        dst = vm.cache_create(ZeroFillProvider(), name="dst")
        nucleus.ipc.create_port("bulk")

        def consumer():
            yield Recv("bulk", dst_cache=dst)

        def producer():
            nucleus.ipc.send("bulk", src_cache=src, src_offset=0,
                             size=2 * PAGE)
            yield

        sched.spawn(consumer)
        sched.spawn(producer)
        sched.run()
        assert dst.read(0, 16) == b"threaded transit"

    def test_deadlock_detected(self, nucleus, sched):
        nucleus.ipc.create_port("never")

        def starved():
            yield Recv("never")

        sched.spawn(starved)
        with pytest.raises(IpcError, match="deadlock"):
            sched.run()

    def test_pipeline_of_three_stages(self, nucleus, sched):
        for name in ("stage1", "stage2"):
            nucleus.ipc.create_port(name)
        results = []

        def source():
            for index in range(4):
                nucleus.ipc.send("stage1", data=bytes([index]))
                yield

        def doubler():
            for _ in range(4):
                message = yield Recv("stage1")
                nucleus.ipc.send("stage2",
                                 data=bytes([message.inline[0] * 2]))

        def sink():
            for _ in range(4):
                message = yield Recv("stage2")
                results.append(message.inline[0])

        sched.spawn(source)
        sched.spawn(doubler)
        sched.spawn(sink)
        sched.run()
        assert results == [0, 2, 4, 6]


class TestThreadsAndMemory:
    def test_threads_share_their_actor_memory(self, nucleus, sched):
        actor = nucleus.create_actor("multi")
        nucleus.rgn_allocate(actor, 2 * PAGE, address=0x40000)

        def writer():
            actor.write(0x40000, b"from thread one")
            yield

        def reader(results):
            yield                             # let the writer go first
            results.append(actor.read(0x40000, 15))

        results = []
        sched.spawn(writer, actor=actor)
        sched.spawn(reader, results, actor=actor)
        sched.run()
        assert results == [b"from thread one"]

    def test_step_budget_guards_runaway(self, sched):
        def forever():
            while True:
                yield

        sched.spawn(forever)
        with pytest.raises(InvalidOperation, match="budget"):
            sched.run(max_steps=100)
