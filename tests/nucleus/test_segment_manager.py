"""Segment manager: binding, upcall translation, segment caching."""

import pytest

from repro.gmi.types import Protection
from repro.nucleus import Nucleus
from repro.segments import Capability, MemoryMapper
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def nucleus():
    return Nucleus(memory_size=4 * MB, max_cached_segments=4)


@pytest.fixture
def mapper(nucleus):
    mapper = MemoryMapper()
    nucleus.register_mapper(mapper)
    return mapper


class TestBinding:
    def test_bind_creates_cache_once(self, nucleus, mapper):
        cap = mapper.register(b"segment data")
        sm = nucleus.segment_manager
        cache1 = sm.bind(cap)
        cache2 = sm.bind(cap)
        assert cache1 is cache2
        sm.release(cap)
        sm.release(cap)

    def test_pull_in_goes_through_mapper_ipc(self, nucleus, mapper):
        cap = mapper.register(b"mapped bytes here")
        cache = nucleus.segment_manager.bind(cap)
        assert cache.read(0, 12) == b"mapped bytes"
        assert mapper.read_requests == 1

    def test_push_out_writes_through_mapper(self, nucleus, mapper):
        cap = mapper.register(bytes(PAGE))
        cache = nucleus.segment_manager.bind(cap)
        cache.write(0, b"dirty data")
        cache.flush(0, PAGE)
        assert mapper.write_requests == 1
        assert mapper.read_segment(cap.key, 0, 10) == b"dirty data"

    def test_mapped_region_over_mapper_segment(self, nucleus, mapper):
        cap = mapper.register(b"text segment content" + bytes(PAGE))
        actor = nucleus.create_actor()
        nucleus.rgn_map(actor, cap, PAGE, address=0x40000,
                        protection=Protection.READ)
        assert actor.read(0x40000, 4) == b"text"


class TestSegmentCaching:
    """Section 5.1.3: unreferenced caches are retained for re-use."""

    def test_rebind_hits_warm_cache(self, nucleus, mapper):
        cap = mapper.register(b"warm data" + bytes(PAGE))
        sm = nucleus.segment_manager
        cache = sm.bind(cap)
        cache.read(0, 4)                      # fault the page in
        sm.release(cap)
        assert sm.retained_count == 1
        again = sm.bind(cap)
        assert again is cache
        assert sm.stats["warm_hits"] == 1
        # The page is still resident: no new mapper read.
        requests_before = mapper.read_requests
        assert again.read(0, 4) == b"warm"
        assert mapper.read_requests == requests_before
        sm.release(cap)

    def test_retention_table_bounded(self, nucleus, mapper):
        sm = nucleus.segment_manager
        caps = [mapper.register(bytes([i]) * 16) for i in range(6)]
        for cap in caps:
            sm.bind(cap)
            sm.release(cap)
        assert sm.retained_count == 4         # max_cached_segments
        assert sm.stats["discards"] == 2

    def test_lru_discard_order(self, nucleus, mapper):
        sm = nucleus.segment_manager
        caps = [mapper.register(bytes([i]) * 16) for i in range(5)]
        for cap in caps:
            sm.bind(cap)
            sm.release(cap)
        # caps[0] was discarded (oldest); caps[1:] retained.
        assert sm.bind(caps[1]) is not None
        assert sm.stats["warm_hits"] == 1
        sm.release(caps[1])
        sm.bind(caps[0])
        assert sm.stats["cold_misses"] == 6   # 5 initial + 1 re-miss

    def test_drop_retained(self, nucleus, mapper):
        sm = nucleus.segment_manager
        cap = mapper.register(b"x")
        sm.bind(cap)
        sm.release(cap)
        assert sm.drop_retained() == 1
        assert sm.retained_count == 0

    def test_discarded_cache_flushes_dirty_data(self, nucleus, mapper):
        sm = nucleus.segment_manager
        cap = mapper.register(bytes(PAGE))
        cache = sm.bind(cap)
        cache.write(0, b"must survive")
        sm.release(cap)
        sm.drop_retained()
        assert mapper.read_segment(cap.key, 0, 12) == b"must survive"


class TestTemporaryCaches:
    def test_temporary_zero_filled(self, nucleus):
        sm = nucleus.segment_manager
        cache = sm.create_temporary()
        assert cache.read(0, 8) == bytes(8)

    def test_swap_allocated_on_first_push_out(self, nucleus):
        sm = nucleus.segment_manager
        swap = nucleus.default_mapper
        cache = sm.create_temporary()
        cache.write(0, b"swap me")
        assert swap.live_segments == 0
        cache.flush(0, PAGE)
        assert swap.live_segments == 1
        # Pull back from swap.
        assert cache.read(0, 7) == b"swap me"

    def test_destroy_temporary_frees_swap(self, nucleus):
        sm = nucleus.segment_manager
        cache = sm.create_temporary()
        cache.write(0, b"x")
        cache.flush(0, PAGE)
        sm.destroy_temporary(cache)
        assert nucleus.default_mapper.live_segments == 0


class TestCacheControl:
    def test_mapper_controls_cache_via_capability(self, nucleus, mapper):
        """5.1.2: cache control ops invoked with a local-cache capability."""
        cap = mapper.register(b"coherent data" + bytes(PAGE))
        sm = nucleus.segment_manager
        cache = sm.bind(cap)
        cache.read(0, 4)
        cache_cap = sm.cache_capability(cache)
        sm.control(cache_cap, "flush")
        assert len(cache.pages) == 0

    def test_control_set_protection(self, nucleus, mapper):
        from repro.errors import AccessViolation
        cap = mapper.register(bytes(PAGE))
        sm = nucleus.segment_manager
        cache = sm.bind(cap)
        actor = nucleus.create_actor()
        nucleus.rgn_map(actor, cap, PAGE, address=0x40000)
        actor.write(0x40000, b"ok")
        cache_cap = sm.cache_capability(cache)
        sm.control(cache_cap, "setProtection", 0, PAGE,
                   protection=Protection.READ)
        with pytest.raises(AccessViolation):
            actor.write(0x40000, b"blocked")

    def test_stale_capability_rejected(self, nucleus):
        from repro.errors import CapabilityError
        with pytest.raises(CapabilityError):
            nucleus.segment_manager.control(
                Capability("segment-manager"), "flush")
