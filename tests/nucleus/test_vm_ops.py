"""The Nucleus rgn* operations (section 5.1.4)."""

import pytest

from repro.errors import InvalidOperation, SegmentationFault
from repro.gmi.types import Protection
from repro.nucleus import Nucleus
from repro.segments import MemoryMapper
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def nucleus():
    return Nucleus(memory_size=4 * MB)


@pytest.fixture
def mapper(nucleus):
    mapper = MemoryMapper()
    nucleus.register_mapper(mapper)
    return mapper


class TestRgnAllocate:
    def test_zero_filled_demand_region(self, nucleus):
        actor = nucleus.create_actor()
        region = nucleus.rgn_allocate(actor, 32 * KB, address=0x40000)
        assert actor.read(0x40000, 8) == bytes(8)
        actor.write(0x40000 + PAGE, b"anon")
        assert actor.read(0x40000 + PAGE, 4) == b"anon"
        assert region.size == 32 * KB

    def test_address_chosen_when_omitted(self, nucleus):
        actor = nucleus.create_actor()
        r1 = nucleus.rgn_allocate(actor, 16 * KB)
        r2 = nucleus.rgn_allocate(actor, 16 * KB)
        assert r1.address != r2.address
        actor.write(r2.address, b"x")

    def test_size_rounded_to_pages(self, nucleus):
        actor = nucleus.create_actor()
        region = nucleus.rgn_allocate(actor, 100)
        assert region.size == PAGE


class TestRgnMap:
    def test_maps_segment(self, nucleus, mapper):
        cap = mapper.register(b"segment bytes" + bytes(PAGE))
        actor = nucleus.create_actor()
        nucleus.rgn_map(actor, cap, PAGE, address=0x40000)
        assert actor.read(0x40000, 7) == b"segment"

    def test_two_actors_share_one_cache(self, nucleus, mapper):
        cap = mapper.register(bytes(PAGE))
        a, b = nucleus.create_actor(), nucleus.create_actor()
        nucleus.rgn_map(a, cap, PAGE, address=0x40000)
        nucleus.rgn_map(b, cap, PAGE, address=0x90000)
        a.write(0x40000, b"shared write")
        assert b.read(0x90000, 12) == b"shared write"
        assert mapper.read_requests <= 1

    def test_windowed_map(self, nucleus, mapper):
        cap = mapper.register(bytes(2 * PAGE) + b"deep content")
        actor = nucleus.create_actor()
        nucleus.rgn_map(actor, cap, PAGE, address=0x40000, offset=2 * PAGE)
        assert actor.read(0x40000, 4) == b"deep"


class TestRgnInit:
    def test_copy_semantics(self, nucleus, mapper):
        cap = mapper.register(b"initial image" + bytes(PAGE))
        actor = nucleus.create_actor()
        nucleus.rgn_init(actor, cap, PAGE, address=0x40000)
        assert actor.read(0x40000, 7) == b"initial"
        actor.write(0x40000, b"private")
        # The backing segment is untouched.
        assert mapper.read_segment(cap.key, 0, 7) == b"initial"

    def test_init_is_deferred(self, nucleus, mapper):
        from repro.kernel.clock import CostEvent
        cap = mapper.register(bytes(64 * PAGE))
        actor = nucleus.create_actor()
        before = nucleus.clock.count(CostEvent.BCOPY_PAGE)
        nucleus.rgn_init(actor, cap, 64 * PAGE, address=0x40000)
        # No data moved at init time (and none even pulled).
        assert nucleus.clock.count(CostEvent.BCOPY_PAGE) == before


class TestFromActorOps:
    def test_rgn_map_from_actor_shares(self, nucleus, mapper):
        cap = mapper.register(b"text" + bytes(PAGE))
        parent = nucleus.create_actor()
        nucleus.rgn_map(parent, cap, PAGE, address=0x10000,
                        protection=Protection.RX)
        child = nucleus.create_actor()
        region = nucleus.rgn_map_from_actor(child, parent, 0x10000,
                                            address=0x10000)
        assert region.protection == Protection.RX       # inherited
        assert child.read(0x10000, 4) == b"text"

    def test_rgn_init_from_actor_copies(self, nucleus):
        parent = nucleus.create_actor()
        nucleus.rgn_allocate(parent, 2 * PAGE, address=0x40000)
        parent.write(0x40000, b"parent state")
        child = nucleus.create_actor()
        nucleus.rgn_init_from_actor(child, parent, 0x40000, address=0x40000)
        assert child.read(0x40000, 12) == b"parent state"
        child.write(0x40000, b"child  state")
        assert parent.read(0x40000, 12) == b"parent state"

    def test_source_address_without_region_rejected(self, nucleus):
        a, b = nucleus.create_actor(), nucleus.create_actor()
        with pytest.raises(InvalidOperation):
            nucleus.rgn_map_from_actor(b, a, 0xDEAD000)

    def test_sharer_keeps_cache_alive_after_owner_exit(self, nucleus, mapper):
        """The shared cache must survive the original mapper's actor."""
        cap = mapper.register(b"still here" + bytes(PAGE))
        parent = nucleus.create_actor()
        nucleus.rgn_map(parent, cap, PAGE, address=0x10000)
        child = nucleus.create_actor()
        nucleus.rgn_map_from_actor(child, parent, 0x10000, address=0x10000)
        nucleus.destroy_actor(parent)
        assert child.read(0x10000, 10) == b"still here"


class TestRgnFree:
    def test_free_unmaps_and_releases(self, nucleus):
        actor = nucleus.create_actor()
        region = nucleus.rgn_allocate(actor, PAGE, address=0x40000)
        actor.write(0x40000, b"x")
        nucleus.rgn_free(actor, region)
        with pytest.raises(SegmentationFault):
            actor.read(0x40000, 1)
        assert actor.mappings == []

    def test_free_foreign_region_rejected(self, nucleus):
        a, b = nucleus.create_actor(), nucleus.create_actor()
        region = nucleus.rgn_allocate(a, PAGE, address=0x40000)
        with pytest.raises(InvalidOperation):
            nucleus.rgn_free(b, region)

    def test_actor_destroy_releases_temporaries(self, nucleus):
        actor = nucleus.create_actor()
        nucleus.rgn_allocate(actor, 2 * PAGE, address=0x40000)
        actor.write(0x40000, b"x")
        nucleus.destroy_actor(actor)
        # The temporary cache is gone from the VM.
        assert all(not c.name.endswith(".anon")
                   for c in nucleus.vm.caches())
