"""Unit tests for the virtual clock and cost model."""

import pytest

from repro.kernel.clock import ClockRegion, CostEvent, CostModel, VirtualClock


class TestCostModel:
    def test_unpriced_event_is_free(self):
        model = CostModel()
        assert model.price(CostEvent.BCOPY_PAGE) == 0.0

    def test_priced_event(self):
        model = CostModel({CostEvent.BCOPY_PAGE: 1.4})
        assert model.price(CostEvent.BCOPY_PAGE) == 1.4

    def test_with_overrides_does_not_mutate(self):
        base = CostModel({CostEvent.BCOPY_PAGE: 1.4}, name="base")
        derived = base.with_overrides({CostEvent.BCOPY_PAGE: 2.0}, name="d")
        assert base.price(CostEvent.BCOPY_PAGE) == 1.4
        assert derived.price(CostEvent.BCOPY_PAGE) == 2.0
        assert derived.name == "d"

    def test_priced_events_lists_nonzero(self):
        model = CostModel({CostEvent.BCOPY_PAGE: 1.4, CostEvent.PAGE_MAP: 0.0})
        assert model.priced_events() == [CostEvent.BCOPY_PAGE]


class TestVirtualClock:
    def test_charge_advances_time(self):
        clock = VirtualClock(CostModel({CostEvent.BZERO_PAGE: 0.87}))
        clock.charge(CostEvent.BZERO_PAGE, 3)
        assert clock.now() == pytest.approx(2.61)

    def test_charge_counts_even_when_free(self):
        clock = VirtualClock()
        clock.charge(CostEvent.FAULT_DISPATCH)
        clock.charge(CostEvent.FAULT_DISPATCH)
        assert clock.count(CostEvent.FAULT_DISPATCH) == 2
        assert clock.now() == 0.0

    def test_zero_count_charge_is_noop(self):
        clock = VirtualClock(CostModel({CostEvent.PAGE_MAP: 1.0}))
        assert clock.charge(CostEvent.PAGE_MAP, 0) == 0.0
        assert clock.count(CostEvent.PAGE_MAP) == 0

    def test_advance_direct(self):
        clock = VirtualClock()
        clock.advance(5.0)
        assert clock.now() == 5.0

    def test_advance_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_reset(self):
        clock = VirtualClock(CostModel({CostEvent.PAGE_MAP: 1.0}))
        clock.charge(CostEvent.PAGE_MAP)
        clock.reset()
        assert clock.now() == 0.0
        assert clock.count(CostEvent.PAGE_MAP) == 0

    def test_snapshot(self):
        clock = VirtualClock()
        clock.charge(CostEvent.FRAME_ALLOC, 4)
        snap = clock.snapshot()
        assert snap == {"frame_alloc": 4}

    def test_clock_region_measures_elapsed(self):
        clock = VirtualClock(CostModel({CostEvent.BCOPY_PAGE: 1.4}))
        clock.charge(CostEvent.BCOPY_PAGE)
        with ClockRegion(clock) as region:
            clock.charge(CostEvent.BCOPY_PAGE, 2)
        assert region.elapsed == pytest.approx(2.8)


class TestChargeEach:
    """charge_each must be bit-identical to N sequential unit charges
    (float addition is not associative, so price*N is NOT the same)."""

    PRICE = 0.087            # deliberately not exactly representable

    def test_bit_identical_to_unit_charges(self):
        model = CostModel({CostEvent.REGION_INVALIDATE_PAGE: self.PRICE})
        bulk, loop = VirtualClock(model), VirtualClock(model)
        bulk.charge_each(CostEvent.REGION_INVALIDATE_PAGE, 1000)
        for _ in range(1000):
            loop.charge(CostEvent.REGION_INVALIDATE_PAGE)
        assert bulk.now() == loop.now()          # exact, not approx
        assert bulk.count(CostEvent.REGION_INVALIDATE_PAGE) == 1000

    def test_differs_from_grouped_charge(self):
        # Sanity: the whole reason charge_each exists.
        model = CostModel({CostEvent.REGION_INVALIDATE_PAGE: self.PRICE})
        grouped, each = VirtualClock(model), VirtualClock(model)
        grouped.charge(CostEvent.REGION_INVALIDATE_PAGE, 1000)
        each.charge_each(CostEvent.REGION_INVALIDATE_PAGE, 1000)
        assert grouped.now() != each.now()

    def test_unpriced_event_moves_only_the_counter(self):
        clock = VirtualClock()
        assert clock.charge_each(CostEvent.PAGE_UNMAP, 5) == 0.0
        assert clock.now() == 0.0
        assert clock.count(CostEvent.PAGE_UNMAP) == 5

    def test_nonpositive_count_is_a_noop(self):
        clock = VirtualClock(CostModel({CostEvent.PAGE_MAP: 1.0}))
        assert clock.charge_each(CostEvent.PAGE_MAP, 0) == 0.0
        assert clock.charge_each(CostEvent.PAGE_MAP, -3) == 0.0
        assert clock.now() == 0.0

    def test_listeners_see_unit_charges(self):
        model = CostModel({CostEvent.PAGE_MAP: 1.0})
        clock = VirtualClock(model)
        seen = []
        clock.add_listener(lambda t, e, c: seen.append((t, e, c)))
        clock.charge_each(CostEvent.PAGE_MAP, 3)
        assert seen == [(0.0, CostEvent.PAGE_MAP, 1),
                        (1.0, CostEvent.PAGE_MAP, 1),
                        (2.0, CostEvent.PAGE_MAP, 1)]

    def test_capture_records_unit_charges(self):
        clock = VirtualClock(CostModel({CostEvent.PAGE_MAP: 1.0}))
        with clock.capture() as region:
            clock.charge_each(CostEvent.PAGE_MAP, 2)
        assert region.charges == [(CostEvent.PAGE_MAP, 1),
                                  (CostEvent.PAGE_MAP, 1)]
        assert clock.now() == 0.0
