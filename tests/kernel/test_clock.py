"""Unit tests for the virtual clock and cost model."""

import pytest

from repro.kernel.clock import ClockRegion, CostEvent, CostModel, VirtualClock


class TestCostModel:
    def test_unpriced_event_is_free(self):
        model = CostModel()
        assert model.price(CostEvent.BCOPY_PAGE) == 0.0

    def test_priced_event(self):
        model = CostModel({CostEvent.BCOPY_PAGE: 1.4})
        assert model.price(CostEvent.BCOPY_PAGE) == 1.4

    def test_with_overrides_does_not_mutate(self):
        base = CostModel({CostEvent.BCOPY_PAGE: 1.4}, name="base")
        derived = base.with_overrides({CostEvent.BCOPY_PAGE: 2.0}, name="d")
        assert base.price(CostEvent.BCOPY_PAGE) == 1.4
        assert derived.price(CostEvent.BCOPY_PAGE) == 2.0
        assert derived.name == "d"

    def test_priced_events_lists_nonzero(self):
        model = CostModel({CostEvent.BCOPY_PAGE: 1.4, CostEvent.PAGE_MAP: 0.0})
        assert model.priced_events() == [CostEvent.BCOPY_PAGE]


class TestVirtualClock:
    def test_charge_advances_time(self):
        clock = VirtualClock(CostModel({CostEvent.BZERO_PAGE: 0.87}))
        clock.charge(CostEvent.BZERO_PAGE, 3)
        assert clock.now() == pytest.approx(2.61)

    def test_charge_counts_even_when_free(self):
        clock = VirtualClock()
        clock.charge(CostEvent.FAULT_DISPATCH)
        clock.charge(CostEvent.FAULT_DISPATCH)
        assert clock.count(CostEvent.FAULT_DISPATCH) == 2
        assert clock.now() == 0.0

    def test_zero_count_charge_is_noop(self):
        clock = VirtualClock(CostModel({CostEvent.PAGE_MAP: 1.0}))
        assert clock.charge(CostEvent.PAGE_MAP, 0) == 0.0
        assert clock.count(CostEvent.PAGE_MAP) == 0

    def test_advance_direct(self):
        clock = VirtualClock()
        clock.advance(5.0)
        assert clock.now() == 5.0

    def test_advance_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_reset(self):
        clock = VirtualClock(CostModel({CostEvent.PAGE_MAP: 1.0}))
        clock.charge(CostEvent.PAGE_MAP)
        clock.reset()
        assert clock.now() == 0.0
        assert clock.count(CostEvent.PAGE_MAP) == 0

    def test_snapshot(self):
        clock = VirtualClock()
        clock.charge(CostEvent.FRAME_ALLOC, 4)
        snap = clock.snapshot()
        assert snap == {"frame_alloc": 4}

    def test_clock_region_measures_elapsed(self):
        clock = VirtualClock(CostModel({CostEvent.BCOPY_PAGE: 1.4}))
        clock.charge(CostEvent.BCOPY_PAGE)
        with ClockRegion(clock) as region:
            clock.charge(CostEvent.BCOPY_PAGE, 2)
        assert region.elapsed == pytest.approx(2.8)
