"""The exception hierarchy: attributes, inheritance, messages."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in ("PageFault", "ProtectionViolation", "BusError",
                     "SegmentationFault", "AccessViolation",
                     "ResourceExhausted", "OutOfFrames",
                     "InvalidOperation", "StaleObject", "MapperError",
                     "CapabilityError", "IpcError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_hardware_fault_family(self):
        for name in ("PageFault", "ProtectionViolation", "BusError"):
            assert issubclass(getattr(errors, name), errors.HardwareFault)
        assert not issubclass(errors.SegmentationFault,
                              errors.HardwareFault)

    def test_out_of_frames_is_resource_exhaustion(self):
        assert issubclass(errors.OutOfFrames, errors.ResourceExhausted)


class TestPayloads:
    def test_page_fault_carries_address_and_kind(self):
        fault = errors.PageFault(0x4000, write=True)
        assert fault.address == 0x4000
        assert fault.write is True
        assert "0x4000" in str(fault) and "write" in str(fault)

    def test_protection_violation_read_message(self):
        fault = errors.ProtectionViolation(0x8000, write=False)
        assert "read" in str(fault)

    def test_segfault_names_context(self):
        fault = errors.SegmentationFault(0xdead000, "shell")
        assert fault.context_name == "shell"
        assert "shell" in str(fault)

    def test_custom_messages_respected(self):
        fault = errors.PageFault(0, False, "segment limit violation at 0x0")
        assert "segment limit" in str(fault)


class TestCatchability:
    def test_broad_catch_via_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.IpcError("dead port")

    def test_hardware_catch_does_not_swallow_kernel_errors(self):
        with pytest.raises(errors.SegmentationFault):
            try:
                raise errors.SegmentationFault(0)
            except errors.HardwareFault:          # pragma: no cover
                pytest.fail("SegmentationFault is not a hardware fault")
