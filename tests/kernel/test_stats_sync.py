"""Unit tests for event counters and the host synchronization interface."""

import threading

import pytest

from repro.kernel.stats import EventCounter
from repro.kernel.sync import NullSync, ThreadedSync


class TestEventCounter:
    def test_add_and_get(self):
        counter = EventCounter()
        counter.add("faults")
        counter.add("faults", 2)
        assert counter.get("faults") == 3

    def test_unknown_counter_is_zero(self):
        assert EventCounter().get("nothing") == 0

    def test_reset(self):
        counter = EventCounter()
        counter.add("x", 5)
        counter.reset()
        assert counter.get("x") == 0

    def test_snapshot_is_a_copy(self):
        counter = EventCounter()
        counter.add("x")
        snap = counter.snapshot()
        counter.add("x")
        assert snap == {"x": 1}

    def test_concurrent_increments(self):
        counter = EventCounter()

        def work():
            for _ in range(1000):
                counter.add("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.get("n") == 4000


class TestNullSync:
    def test_lock_is_reentrant_noop(self):
        sync = NullSync()
        lock = sync.lock()
        with lock:
            with lock:
                pass
        assert lock.acquire() is True
        lock.release()

    def test_condition_notify_is_noop(self):
        sync = NullSync()
        cond = sync.condition()
        cond.notify()
        cond.notify_all()

    def test_condition_wait_raises(self):
        sync = NullSync()
        cond = sync.condition()
        with pytest.raises(RuntimeError, match="single-threaded"):
            cond.wait()


class TestThreadedSync:
    def test_condition_wait_notify(self):
        sync = ThreadedSync()
        cond = sync.condition()
        ready = []

        def waiter():
            with cond:
                while not ready:
                    cond.wait(timeout=5)

        thread = threading.Thread(target=waiter)
        thread.start()
        with cond:
            ready.append(True)
            cond.notify_all()
        thread.join(timeout=5)
        assert not thread.is_alive()

    def test_lock_mutual_exclusion(self):
        sync = ThreadedSync()
        lock = sync.lock()
        shared = []

        def work():
            for _ in range(500):
                with lock:
                    shared.append(len(shared))

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert shared == list(range(2000))
