"""The pressure observatory: per-space ledgers, PSI stall windows,
cross-thread span adoption, and the ``repro top`` view.

Three contracts under test:

* **arithmetic** — :class:`StallWindow` merges nested/overlapping
  stalls, windows prune, averages clamp; ``extent_overlap_pages`` is
  exact on the extent lists the residency index produces;
* **attribution** — faults, pulls, pushes and evictions land on the
  right :class:`SpaceAccount`; a destroyed space's series leave the
  registry like any PR-3 drop (rollups adjusted, generation bumped,
  a recycled id starts zeroed); a paused registry allocates nothing;
* **determinism** — the board reads the virtual clock but never
  charges it, so running with accounting on cannot move virtual time.
"""

import json

import pytest

from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.obs import (
    MetricsRegistry, PressureBoard, RingBufferSink, SpaceAccount,
    StallWindow, extent_overlap_pages,
)
from repro.obs.export import _tree, write_chrome_trace
from repro.pvm import PagedVirtualMemory
from repro.units import KB, MB

PAGE = 8 * KB


# ---------------------------------------------------------------------------
# StallWindow arithmetic
# ---------------------------------------------------------------------------

class TestStallWindow:
    def test_single_interval(self):
        window = StallWindow()
        window.enter(10.0)
        window.exit(14.0)
        assert window.total_ms == pytest.approx(4.0)
        assert window.count == 1
        assert window.stalled_ms(10.0, 20.0) == pytest.approx(4.0)

    def test_nested_stalls_merge(self):
        # A backpressure stall inside a pull stall is one interval.
        window = StallWindow()
        window.enter(0.0)
        window.enter(1.0)
        window.exit(2.0)
        window.exit(5.0)
        assert window.count == 1
        assert window.total_ms == pytest.approx(5.0)

    def test_touching_intervals_coalesce(self):
        window = StallWindow()
        window.enter(0.0)
        window.exit(2.0)
        window.enter(2.0)
        window.exit(4.0)
        assert window._intervals == type(window._intervals)([(0.0, 4.0)])
        assert window.count == 2

    def test_unbalanced_exit_is_a_noop(self):
        window = StallWindow()
        window.exit(5.0)
        assert window.total_ms == 0.0 and window.count == 0

    def test_open_interval_counts_toward_window(self):
        window = StallWindow()
        window.enter(8.0)
        # Still stalled at query time: the open interval contributes.
        assert window.stalled_ms(10.0, 12.0) == pytest.approx(4.0)
        assert window.avg(10.0, 12.0) == pytest.approx(0.4)

    def test_avg_is_windowed_and_clamped(self):
        window = StallWindow()
        window.enter(0.0)
        window.exit(100.0)
        assert window.avg(10.0, 100.0) == 1.0
        # The whole stall fell out of a short trailing window.
        assert window.avg(10.0, 200.0) == 0.0
        assert window.avg(300.0, 200.0) == pytest.approx(100.0 / 300.0)

    def test_history_prunes_past_horizon(self):
        window = StallWindow()
        for start in range(0, 1000, 10):
            window.enter(float(start))
            window.exit(float(start) + 1.0)
        assert window.count == 100
        # Only ~300 ms of history is retained.
        assert len(window._intervals) <= 31

    def test_note_counts_without_time(self):
        window = StallWindow()
        window.note()
        assert window.count == 1
        assert window.total_ms == 0.0


class TestExtentOverlap:
    def test_exact_overlap_arithmetic(self):
        extents = [(0, 2 * PAGE), (4 * PAGE, PAGE)]
        assert extent_overlap_pages(extents, 0, 8 * PAGE, PAGE) == 3
        assert extent_overlap_pages(extents, PAGE, PAGE, PAGE) == 1
        assert extent_overlap_pages(extents, 5 * PAGE, PAGE, PAGE) == 0
        assert extent_overlap_pages([], 0, 8 * PAGE, PAGE) == 0


# ---------------------------------------------------------------------------
# PressureBoard attribution
# ---------------------------------------------------------------------------

def make_board(page_size: int = PAGE):
    clock = {"now": 0.0}
    registry = MetricsRegistry()
    board = PressureBoard(registry, lambda: clock["now"],
                          page_size=page_size)
    return board, registry, clock


class TestBoardLedgers:
    def test_fault_attribution_and_rollup(self):
        board, registry, _ = make_board()
        board.fault(7, write=False)
        board.fault(7, write=True)
        board.fault(9, write=True)
        assert registry.counter_value("space.fault.read{space=7}") == 1
        assert registry.counter_value("space.fault.write{space=7}") == 1
        assert registry.counter_value("space.fault.write{space=9}") == 1
        assert registry.counter_value("space.fault.write") == 2
        assert board.account(7).faults_read == 1

    def test_pull_push_charge_current_task_in_bytes(self):
        board, registry, _ = make_board(page_size=PAGE)
        board.begin_task(3)
        board.pulled(2)
        board.pushed(1)
        board.end_task()
        # Unattributed I/O (no task) reaches no ledger.
        board.pulled(5)
        assert board.account(3).pull_bytes == 2 * PAGE
        assert board.account(3).push_bytes == PAGE
        assert registry.counter_value("space.pull_bytes{space=3}") \
            == 2 * PAGE
        assert registry.counter_value("space.pull_bytes") == 2 * PAGE

    def test_eviction_caused_vs_suffered(self):
        board, registry, _ = make_board()
        board.begin_task(1)
        board.eviction({2, 3})
        board.end_task()
        assert board.account(1).evictions_caused == 1
        assert board.account(2).evictions_suffered == 1
        assert board.account(3).evictions_suffered == 1
        assert registry.counter_value("space.evict.suffered") == 2

    def test_stall_scope_charges_some_full_and_space(self):
        board, _, clock = make_board()
        board.begin_task(4)
        with board.stall("pull"):
            clock["now"] = 3.0
        board.end_task()
        assert board.some.total_ms == pytest.approx(3.0)
        # One task, one stall: everything active was stalled.
        assert board.full.total_ms == pytest.approx(3.0)
        assert board.account(4).stall.total_ms == pytest.approx(3.0)
        assert board.stall_counts == {"pull": 1}

    def test_full_requires_every_task_stalled(self):
        board, _, clock = make_board()
        board.begin_task(1)
        board.begin_task(2)
        with board.stall("pull"):
            clock["now"] = 2.0
        assert board.some.total_ms == pytest.approx(2.0)
        # Two active tasks, one stalled: "some", never "full".
        assert board.full.total_ms == 0.0

    def test_publish_writes_psi_gauges(self):
        board, registry, clock = make_board()
        board.begin_task(5)
        with board.stall("pull"):
            clock["now"] = 5.0
        board.end_task()
        board.note_stall("io.queue")
        board.publish()
        gauges = registry.snapshot()["gauges"]
        assert gauges["psi.memory.some.avg10"] == pytest.approx(0.5)
        assert gauges["psi.memory.some.total_ms"] == pytest.approx(5.0)
        assert gauges["psi.stall.count{kind=pull}"] == 1.0
        assert gauges["psi.stall.count{kind=io.queue}"] == 1.0
        assert gauges["space.stall_ms{space=5}"] == pytest.approx(5.0)
        assert gauges["psi.memory.some.avg10{space=5}"] \
            == pytest.approx(0.5)

    def test_paused_registry_allocates_and_records_nothing(self):
        board, registry, clock = make_board()
        registry.enabled = False
        board.begin_task(1)
        board.fault(1, write=True)
        board.pulled(4)
        with board.stall("pull"):
            clock["now"] = 9.0
        board.note_stall("io.queue")
        board.eviction({2})
        board.end_task()
        board.publish()
        assert board.accounts == {}
        assert board._tasks == []
        assert board.some.total_ms == 0.0
        registry.enabled = True
        assert registry.snapshot()["counters"] == {}

    def test_drop_space_zeroes_a_recycled_id(self):
        board, registry, _ = make_board()
        board.fault(6, write=True)
        generation = registry.generation
        board.drop_space(6)
        assert registry.generation == generation + 1
        assert 6 not in board.accounts
        recycled = board.account(6)
        assert recycled.faults_write == 0
        assert registry.counter_value("space.fault.write{space=6}") == 0


# ---------------------------------------------------------------------------
# Per-space accounting on a live manager
# ---------------------------------------------------------------------------

@pytest.fixture
def vm():
    return PagedVirtualMemory(memory_size=4 * MB)


def _touch_pages(vm, context, pages):
    for index in range(pages):
        vm.user_write(context, 0x40000 + index * PAGE, bytes([index + 1]))


def _make_space(vm, name, pages=4):
    cache = vm.cache_create(ZeroFillProvider(), name=f"{name}.heap")
    context = vm.context_create(name)
    context.region_create(0x40000, pages * PAGE,
                          protection=Protection.RW, cache=cache, offset=0)
    return context


class TestLiveAccounting:
    def test_faults_land_on_the_faulting_space(self, vm):
        alpha = _make_space(vm, "alpha")
        beta = _make_space(vm, "beta")
        alpha.switch()
        _touch_pages(vm, alpha, 4)
        beta.switch()
        _touch_pages(vm, beta, 2)
        counters = vm.metrics_snapshot()["counters"]
        assert counters[f"space.fault.write{{space={alpha.space}}}"] == 4
        assert counters[f"space.fault.write{{space={beta.space}}}"] == 2
        assert counters["space.fault.write"] == 6

    def test_residency_gauges_published_per_space(self, vm):
        alpha = _make_space(vm, "alpha")
        alpha.switch()
        _touch_pages(vm, alpha, 3)
        gauges = vm.metrics_snapshot()["gauges"]
        assert gauges[f"space.resident_pages{{space={alpha.space}}}"] == 3
        assert gauges[f"space.mapped_pages{{space={alpha.space}}}"] == 3

    def test_destroy_drops_series_and_adjusts_rollups(self, vm):
        alpha = _make_space(vm, "alpha")
        beta = _make_space(vm, "beta")
        alpha.switch()
        _touch_pages(vm, alpha, 4)
        beta.switch()
        _touch_pages(vm, beta, 2)
        generation = vm.probe.registry.generation
        vm.context_destroy(alpha)
        snapshot = vm.metrics_snapshot()
        counters = snapshot["counters"]
        # The labeled series is gone, the rollup shrank by its share,
        # and the generation bump tells samplers their baselines died.
        assert f"space.fault.write{{space={alpha.space}}}" not in counters
        assert counters["space.fault.write"] == 2
        assert snapshot["meta"]["generation"] > generation
        assert f"space.resident_pages{{space={alpha.space}}}" \
            not in snapshot["gauges"]

    def test_recreated_space_starts_from_zero(self, vm):
        alpha = _make_space(vm, "alpha")
        alpha.switch()
        _touch_pages(vm, alpha, 4)
        vm.context_destroy(alpha)
        again = _make_space(vm, "again")
        again.switch()
        _touch_pages(vm, again, 1)
        counters = vm.metrics_snapshot()["counters"]
        assert counters[f"space.fault.write{{space={again.space}}}"] == 1

    def test_board_never_charges_virtual_time(self, vm):
        # Same workload, accounting on vs registry paused: identical
        # virtual cost (the +0.000 vdrift gate in miniature).
        alpha = _make_space(vm, "alpha")
        alpha.switch()
        _touch_pages(vm, alpha, 4)
        cost_on = vm.clock.now()
        other = PagedVirtualMemory(memory_size=4 * MB)
        other.probe.registry.enabled = False
        beta = _make_space(other, "beta")
        beta.switch()
        _touch_pages(other, beta, 4)
        assert other.clock.now() == cost_on

    def test_snapshot_validates_against_schema(self, vm):
        from repro.obs.schema import SNAPSHOT_SCHEMA, validate
        alpha = _make_space(vm, "alpha")
        alpha.switch()
        _touch_pages(vm, alpha, 4)
        assert validate(vm.metrics_snapshot(), SNAPSHOT_SCHEMA) == []


# ---------------------------------------------------------------------------
# Paused-registry allocation audit (the PR-7 call sites)
# ---------------------------------------------------------------------------

class TestInflightSeriesCache:
    def test_paused_registry_formats_no_series(self):
        vm = PagedVirtualMemory(memory_size=4 * MB)
        table = vm.inflight
        vm.probe.registry.enabled = False
        cache = vm.cache_create(ZeroFillProvider(), name="audit")
        entry = table.begin(cache, 0, PAGE)
        table.join(entry)
        # The hoisted enabled-check means no label was ever formatted.
        assert table._series == {}

    def test_enabled_registry_counts_and_release_evicts(self):
        vm = PagedVirtualMemory(memory_size=4 * MB)
        table = vm.inflight
        cache = vm.cache_create(ZeroFillProvider(), name="audit")
        entry = table.begin(cache, 0, PAGE)
        table.join(entry)
        registry = vm.probe.registry
        assert registry.counter_value(
            "engine.inflight.begin{segment=audit}") == 1
        assert registry.counter_value(
            "engine.inflight.coalesced{segment=audit}") == 1
        assert cache.cache_id in table._series
        table.release(cache.cache_id)
        assert cache.cache_id not in table._series


# ---------------------------------------------------------------------------
# Cross-thread span adoption (satellite 1)
# ---------------------------------------------------------------------------

def _run_storm(io_threads: int):
    from repro.bench.harness import WORKLOADS

    workload = WORKLOADS["writeback_storm"]
    state = workload.setup("pvm", None, io_threads)
    vm = state["vm"]
    sink = RingBufferSink(capacity=8192)
    vm.probe.set_sink(sink)
    workload.body(state)
    io = vm.io
    io.flush()
    io.close()
    return vm, sink


class TestSpanAdoption:
    def test_byte_halves_nest_under_submitting_spans(self, tmp_path):
        vm, sink = _run_storm(io_threads=2)
        spans = list(sink.spans)
        by_id = {span.span_id: span for span in spans}
        writes = [span for span in spans if span.name == "io.write_range"]
        assert writes, "the storm should defer write byte-halves"
        for span in writes:
            parent = by_id.get(span.parent_id)
            assert parent is not None, \
                "adopted span lost its submitting parent"
            assert parent.name == "cache.push_out"
            assert span.depth == parent.depth + 1
        # The Chrome export nests them below the submitting span.
        _, children = _tree([span for span in spans
                             if span.end_ms is not None])
        for span in writes:
            assert span in children[span.parent_id]
        trace_path = tmp_path / "storm.json"
        write_chrome_trace(spans, trace_path)
        events = json.loads(trace_path.read_text())["traceEvents"]
        assert any(event.get("name") == "io.write_range"
                   for event in events)

    def test_synchronous_path_needs_no_adoption(self):
        vm, sink = _run_storm(io_threads=0)
        assert all(span.name != "io.write_range" for span in sink.spans)

    def test_adopted_ids_are_unique(self):
        vm, sink = _run_storm(io_threads=2)
        ids = [span.span_id for span in sink.spans]
        assert len(ids) == len(set(ids))


# ---------------------------------------------------------------------------
# The top view
# ---------------------------------------------------------------------------

class TestTopView:
    def test_mix_frame_has_nonzero_stall(self, capsys):
        from repro.tools.cli import main

        assert main(["top", "--once"]) == 0
        out = capsys.readouterr().out
        assert "psi memory" in out
        assert "make" in out and "editor" in out and "pager" in out
        # The acceptance gate: some stall fraction is really nonzero.
        header = [line for line in out.splitlines()
                  if line.startswith("psi memory  some")][0]
        assert "avg10=  0.0%" not in header

    def test_watch_mode_emits_frames(self, capsys):
        from repro.tools.cli import main

        assert main(["top", "--frames", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("-- frame") == 2

    def test_mix_is_deterministic(self):
        from repro.tools.top import build_mix, mix_round

        totals = []
        for _ in range(2):
            state = build_mix(io_threads=0)
            for _round in range(2):
                mix_round(state)
            totals.append((state["clock"].now(),
                           state["vm"].pressure.some.total_ms))
        assert totals[0] == totals[1]
