"""Direct unit tests for the single global map (section 4.1.1)."""

import pytest

from repro.errors import InvalidOperation
from repro.gmi.upcalls import ZeroFillProvider
from repro.pvm import PagedVirtualMemory
from repro.pvm.global_map import GlobalMap
from repro.pvm.page import CowStub, RealPageDescriptor, SyncStub
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def rig():
    vm = PagedVirtualMemory(memory_size=1 * MB)
    gmap = GlobalMap(PAGE)
    caches = [vm.cache_create(ZeroFillProvider(), name=f"c{i}")
              for i in range(2)]
    return vm, gmap, caches


def make_page(vm, cache, offset):
    frame = vm.memory.allocate_frame()
    return RealPageDescriptor(cache, offset, frame)


class TestBasicOps:
    def test_insert_lookup_remove(self, rig):
        vm, gmap, (a, b) = rig
        page = make_page(vm, a, 0)
        gmap.insert(a, 0, page)
        assert gmap.lookup(a, 0) is page
        assert gmap.remove(a, 0) is page
        assert gmap.lookup(a, 0) is None

    def test_keys_are_cache_scoped(self, rig):
        vm, gmap, (a, b) = rig
        page_a = make_page(vm, a, 0)
        page_b = make_page(vm, b, 0)
        gmap.insert(a, 0, page_a)
        gmap.insert(b, 0, page_b)
        assert gmap.lookup(a, 0) is page_a
        assert gmap.lookup(b, 0) is page_b
        assert len(gmap) == 2

    def test_double_insert_rejected(self, rig):
        vm, gmap, (a, _) = rig
        gmap.insert(a, 0, make_page(vm, a, 0))
        with pytest.raises(InvalidOperation):
            gmap.insert(a, 0, make_page(vm, a, 0))

    def test_replace_requires_occupant(self, rig):
        vm, gmap, (a, _) = rig
        with pytest.raises(InvalidOperation):
            gmap.replace(a, 0, make_page(vm, a, 0))

    def test_replace_returns_old(self, rig):
        vm, gmap, (a, _) = rig
        vm_lock = None
        stub = SyncStub(a, 0, vm_lock)
        gmap.insert(a, 0, stub)
        page = make_page(vm, a, 0)
        assert gmap.replace(a, 0, page) is stub
        assert gmap.lookup(a, 0) is page

    def test_remove_empty_rejected_discard_tolerant(self, rig):
        vm, gmap, (a, _) = rig
        with pytest.raises(InvalidOperation):
            gmap.remove(a, 0)
        assert gmap.discard(a, 0) is None

    def test_alignment_enforced(self, rig):
        vm, gmap, (a, _) = rig
        with pytest.raises(InvalidOperation):
            gmap.lookup(a, 100)
        with pytest.raises(InvalidOperation):
            gmap.insert(a, PAGE + 1, make_page(vm, a, 0))


class TestEnumeration:
    def test_entries_of_sorted_and_scoped(self, rig):
        vm, gmap, (a, b) = rig
        for offset in (2 * PAGE, 0, PAGE):
            gmap.insert(a, offset, make_page(vm, a, offset))
        gmap.insert(b, 0, make_page(vm, b, 0))
        offsets = [offset for offset, _ in gmap.entries_of(a)]
        assert offsets == [0, PAGE, 2 * PAGE]

    def test_iteration_yields_all(self, rig):
        vm, gmap, (a, b) = rig
        gmap.insert(a, 0, make_page(vm, a, 0))
        gmap.insert(b, PAGE, make_page(vm, b, PAGE))
        keys = {key for key, _ in gmap}
        assert keys == {(a.cache_id, 0), (b.cache_id, PAGE)}


class TestScalingProperty:
    """Section 4.1: the map scales with resident pages, not with
    segment or address-space sizes."""

    def test_size_tracks_resident_pages_only(self):
        vm = PagedVirtualMemory(memory_size=2 * MB)
        cache = vm.cache_create(ZeroFillProvider())
        ctx = vm.context_create()
        from repro.gmi.types import Protection
        # A 2 GB region over a (conceptually) huge segment...
        ctx.region_create(0x10000000, (1 << 31), protection=Protection.RW,
                          cache=cache, offset=0)
        assert len(vm.global_map) == 0
        # ...costs map entries only as pages are touched.
        for index in range(5):
            vm.user_write(ctx, 0x10000000 + index * 7919 * PAGE, b"x")
        assert len(vm.global_map) == 5
