"""Unit tests for the page-fault path (section 4.1.2)."""

import pytest

from repro.errors import AccessViolation, SegmentationFault
from repro.gmi.types import AccessMode, Protection
from repro.gmi.upcalls import SegmentProvider
from repro.kernel.clock import CostEvent
from repro.units import KB

PAGE = 8 * KB


class RecordingProvider(SegmentProvider):
    """Provider that records upcalls and serves patterned data."""

    def __init__(self, pattern=b"\xab"):
        self.pattern = pattern
        self.pull_log = []
        self.push_log = []
        self.write_access_log = []
        self.store = {}

    def pull_in(self, cache, offset, size, access_mode):
        self.pull_log.append((offset, size, access_mode))
        data = self.store.get(offset, self.pattern * size)
        cache.fill_up(offset, data[:size])

    def get_write_access(self, cache, offset, size):
        self.write_access_log.append((offset, size))

    def push_out(self, cache, offset, size):
        self.push_log.append((offset, size))
        self.store[offset] = cache.copy_back(offset, size)

    def segment_create(self, cache):
        return "recorded"


class TestFaultDispatch:
    def test_unmapped_address_is_segfault(self, pvm, ctx):
        with pytest.raises(SegmentationFault):
            pvm.user_read(ctx, 0xDEAD0000, 1)

    def test_segfault_reports_address(self, pvm, ctx):
        with pytest.raises(SegmentationFault) as exc:
            pvm.user_read(ctx, 0x5000, 1)
        assert exc.value.address == 0x5000

    def test_fault_offset_computation(self, pvm, ctx):
        """Fault offset = region offset + (addr - region start)."""
        provider = RecordingProvider()
        cache = pvm.cache_create(provider)
        ctx.region_create(0x40000, 4 * PAGE, protection=Protection.RW,
                          cache=cache, offset=16 * PAGE)
        pvm.user_read(ctx, 0x40000 + 2 * PAGE + 100, 1)
        assert provider.pull_log == [(16 * PAGE + 2 * PAGE, PAGE,
                                      AccessMode.READ)]

    def test_resident_page_no_second_pull(self, pvm, ctx):
        provider = RecordingProvider()
        cache = pvm.cache_create(provider)
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        pvm.user_read(ctx, 0x40000, 1)
        pvm.user_read(ctx, 0x40010, 1)
        assert len(provider.pull_log) == 1

    def test_write_fault_pulls_with_write_mode(self, pvm, ctx):
        provider = RecordingProvider()
        cache = pvm.cache_create(provider)
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        pvm.user_write(ctx, 0x40000, b"w")
        assert provider.pull_log[0][2] is AccessMode.WRITE

    def test_read_then_write_upcalls_get_write_access(self, pvm, ctx):
        """Data pulled read-only needs a getWriteAccess upcall (Table 3)."""
        provider = RecordingProvider()
        cache = pvm.cache_create(provider)
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        pvm.user_read(ctx, 0x40000, 1)
        assert provider.write_access_log == []
        pvm.user_write(ctx, 0x40000, b"w")
        assert provider.write_access_log == [(0, PAGE)]

    def test_fault_counters(self, pvm, ctx, make_cache):
        cache = make_cache()
        ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        before = pvm.clock.count(CostEvent.FAULT_DISPATCH)
        pvm.user_write(ctx, 0x40000, b"1")
        pvm.user_write(ctx, 0x40000 + PAGE, b"2")
        assert pvm.clock.count(CostEvent.FAULT_DISPATCH) == before + 2
        assert cache.statistics.write_faults == 2

    def test_zero_fill_content(self, pvm, ctx, make_cache):
        cache = make_cache()
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        assert pvm.user_read(ctx, 0x40000, 64) == bytes(64)

    def test_sparse_region_only_touched_pages_resident(self, pvm, ctx,
                                                       make_cache):
        """Structures scale with touched pages, not region size (4.1)."""
        cache = make_cache()
        region = ctx.region_create(0x40000, 128 * PAGE,
                                   protection=Protection.RW, cache=cache,
                                   offset=0)
        pvm.user_write(ctx, 0x40000 + 77 * PAGE, b"sparse")
        assert region.status().resident_pages == 1
        assert len(cache.pages) == 1

    def test_execute_only_region_readable_as_text(self, pvm, ctx, make_cache):
        cache = make_cache()
        cache.write(0, b"\x90\x90")
        ctx.region_create(0x40000, PAGE, protection=Protection.RX, cache=cache,
                          offset=0)
        assert pvm.user_read(ctx, 0x40000, 2) == b"\x90\x90"

    def test_write_to_rx_region_violates(self, pvm, ctx, make_cache):
        cache = make_cache()
        ctx.region_create(0x40000, PAGE, protection=Protection.RX, cache=cache,
                          offset=0)
        with pytest.raises(AccessViolation):
            pvm.user_write(ctx, 0x40000, b"X")


class TestMultiContext:
    def test_contexts_isolated(self, pvm, make_cache):
        a = pvm.context_create("a")
        b = pvm.context_create("b")
        cache_a = make_cache()
        a.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache_a,
                        offset=0)
        pvm.user_write(a, 0x40000, b"private")
        with pytest.raises(SegmentationFault):
            pvm.user_read(b, 0x40000, 1)

    def test_shared_cache_across_contexts(self, pvm, make_cache):
        """A segment may be mapped into any number of contexts (3.2)."""
        a = pvm.context_create("a")
        b = pvm.context_create("b")
        cache = make_cache()
        a.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                        offset=0)
        b.region_create(0x90000, PAGE, protection=Protection.RW, cache=cache,
                        offset=0)
        pvm.user_write(a, 0x40000, b"both see")
        assert pvm.user_read(b, 0x90000, 8) == b"both see"
        # One physical frame serves both mappings.
        assert len(cache.pages) == 1
        assert len(cache.pages[0].mappings) == 2


class TestPushPullRoundtrip:
    def test_flush_then_refault(self, pvm, ctx):
        provider = RecordingProvider()
        cache = pvm.cache_create(provider)
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        pvm.user_write(ctx, 0x40000, b"persist me")
        cache.flush(0, PAGE)
        assert provider.push_log == [(0, PAGE)]
        assert len(cache.pages) == 0
        # Refault pulls the saved value back.
        assert pvm.user_read(ctx, 0x40000, 10) == b"persist me"
        assert len(provider.pull_log) == 2

    def test_sync_keeps_page(self, pvm, ctx):
        provider = RecordingProvider()
        cache = pvm.cache_create(provider)
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        pvm.user_write(ctx, 0x40000, b"synced")
        cache.sync(0, PAGE)
        assert provider.push_log == [(0, PAGE)]
        assert len(cache.pages) == 1
        # Page is clean now: a second sync pushes nothing.
        cache.sync(0, PAGE)
        assert len(provider.push_log) == 1
