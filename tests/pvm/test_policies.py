"""Replacement policies: unit behaviour and PVM integration."""

import pytest

from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.pvm import PagedVirtualMemory
from repro.pvm.policies import (
    FifoPolicy, LruPolicy, POLICIES, SecondChancePolicy,
)
from repro.units import KB

PAGE = 8 * KB


class FakePage:
    def __init__(self, tag):
        self.tag = tag
        self.pinned = False
        self.referenced = True

    def __repr__(self):
        return f"FakePage({self.tag})"


def first_victims(policy, count):
    result = []
    for page in policy.victims():
        result.append(page)
        policy.unregister(page)          # simulate eviction
        if len(result) == count:
            break
    return result


class TestFifo:
    def test_arrival_order(self):
        policy = FifoPolicy()
        pages = [FakePage(i) for i in range(4)]
        for page in pages:
            policy.register(page)
        assert first_victims(policy, 2) == pages[:2]

    def test_references_ignored(self):
        policy = FifoPolicy()
        pages = [FakePage(i) for i in range(3)]
        for page in pages:
            policy.register(page)
        pages[0].referenced = True
        assert first_victims(policy, 1) == [pages[0]]

    def test_pinned_skipped(self):
        policy = FifoPolicy()
        pages = [FakePage(i) for i in range(3)]
        for page in pages:
            policy.register(page)
        pages[0].pinned = True
        assert first_victims(policy, 1) == [pages[1]]


class TestSecondChance:
    def test_referenced_pages_get_a_pass(self):
        policy = SecondChancePolicy()
        pages = [FakePage(i) for i in range(3)]
        for page in pages:
            policy.register(page)
        pages[0].referenced = True
        pages[1].referenced = False
        pages[2].referenced = False
        assert first_victims(policy, 1) == [pages[1]]
        assert pages[0].referenced is False      # bit consumed

    def test_all_referenced_still_terminates(self):
        policy = SecondChancePolicy()
        pages = [FakePage(i) for i in range(3)]
        for page in pages:
            policy.register(page)
        victims = first_victims(policy, 3)
        assert len(victims) == 3                 # second pass evicts


class TestLru:
    def test_recently_referenced_survive(self):
        policy = LruPolicy()
        pages = [FakePage(i) for i in range(4)]
        for page in pages:
            page.referenced = False
            policy.register(page)
        pages[0].referenced = True               # "recently used"
        victims = first_victims(policy, 3)
        assert pages[0] not in victims

    def test_registry_is_lifo_of_staleness(self):
        policy = LruPolicy()
        pages = [FakePage(i) for i in range(3)]
        for page in pages:
            page.referenced = False
            policy.register(page)
        assert first_victims(policy, 3) == pages


class TestPolicyRegistry:
    def test_all_policies_listed(self):
        assert set(POLICIES) == {"fifo", "second-chance", "lru"}


class TestPvmIntegration:
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_data_integrity_under_any_policy(self, policy_name):
        vm = PagedVirtualMemory(memory_size=16 * PAGE,
                                replacement_policy=POLICIES[policy_name]())
        cache = vm.cache_create(ZeroFillProvider())
        for index in range(32):                  # 2x RAM
            cache.write(index * PAGE, bytes([index + 1]) * 8)
        for index in range(32):
            assert cache.read(index * PAGE, 8) == bytes([index + 1]) * 8

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_pins_respected_under_any_policy(self, policy_name):
        vm = PagedVirtualMemory(memory_size=8 * PAGE,
                                replacement_policy=POLICIES[policy_name]())
        ctx = vm.context_create()
        cache = vm.cache_create(ZeroFillProvider())
        region = ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        region.lock_in_memory()
        frames = {page.frame for page in cache.pages.values()}
        other = vm.cache_create(ZeroFillProvider())
        for index in range(12):
            other.write(index * PAGE, b"pressure")
        assert {page.frame for page in cache.pages.values()} == frames

    def test_lru_beats_fifo_on_looping_hot_set(self):
        """A hot set re-referenced inside a colder scan: LRU keeps it."""

        def faults_with(policy):
            vm = PagedVirtualMemory(memory_size=12 * PAGE,
                                    replacement_policy=policy)
            cache = vm.cache_create(ZeroFillProvider())
            hot = list(range(4))
            cold = list(range(4, 24))
            for index in hot + cold:
                cache.write(index * PAGE, bytes([index + 1]))
            before = cache.statistics.pull_ins
            for round_index in range(6):
                for index in hot:
                    cache.read(index * PAGE, 1)
                cache.read(cold[round_index] * PAGE, 1)
            return cache.statistics.pull_ins - before

        assert faults_with(LruPolicy()) <= faults_with(FifoPolicy())
