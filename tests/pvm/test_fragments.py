"""Unit tests for the fragment-list structure (section 4.2.4)."""

import pytest

from repro.errors import InvalidOperation
from repro.pvm.fragments import Fragment, FragmentList


class Payload:
    """Test payload tracking its shift history."""

    def __init__(self, tag, base=0):
        self.tag = tag
        self.base = base

    def shifted(self, delta):
        return Payload(self.tag, self.base + delta)

    def __eq__(self, other):
        return (self.tag, self.base) == (other.tag, other.base)

    def __repr__(self):
        return f"Payload({self.tag}, {self.base})"


class TestInsert:
    def test_insert_and_find(self):
        fragments = FragmentList()
        fragments.insert(100, 50, Payload("a"))
        found = fragments.find(120)
        assert found is not None and found.payload.tag == "a"

    def test_find_misses_outside(self):
        fragments = FragmentList()
        fragments.insert(100, 50, Payload("a"))
        assert fragments.find(99) is None
        assert fragments.find(150) is None          # end-exclusive

    def test_sorted_order(self):
        fragments = FragmentList()
        fragments.insert(200, 10, Payload("b"))
        fragments.insert(100, 10, Payload("a"))
        fragments.insert(300, 10, Payload("c"))
        assert [f.payload.tag for f in fragments] == ["a", "b", "c"]

    def test_overlap_with_predecessor_rejected(self):
        fragments = FragmentList()
        fragments.insert(100, 50, Payload("a"))
        with pytest.raises(InvalidOperation):
            fragments.insert(149, 10, Payload("b"))

    def test_overlap_with_successor_rejected(self):
        fragments = FragmentList()
        fragments.insert(100, 50, Payload("a"))
        with pytest.raises(InvalidOperation):
            fragments.insert(60, 41, Payload("b"))

    def test_adjacent_fragments_allowed(self):
        fragments = FragmentList()
        fragments.insert(100, 50, Payload("a"))
        fragments.insert(150, 50, Payload("b"))
        assert len(fragments) == 2

    def test_zero_size_rejected(self):
        with pytest.raises(InvalidOperation):
            FragmentList().insert(0, 0, Payload("a"))


class TestOverlapping:
    def test_overlapping_selection(self):
        fragments = FragmentList()
        fragments.insert(0, 10, Payload("a"))
        fragments.insert(20, 10, Payload("b"))
        fragments.insert(40, 10, Payload("c"))
        hits = fragments.overlapping(5, 30)          # [5, 35)
        assert [f.payload.tag for f in hits] == ["a", "b"]

    def test_overlapping_empty(self):
        fragments = FragmentList()
        fragments.insert(0, 10, Payload("a"))
        assert fragments.overlapping(10, 5) == []


class TestRemoveRange:
    def test_exact_removal(self):
        fragments = FragmentList()
        fragments.insert(100, 50, Payload("a"))
        removed = fragments.remove_range(100, 50)
        assert len(fragments) == 0
        assert removed[0].offset == 100 and removed[0].size == 50

    def test_split_middle(self):
        fragments = FragmentList()
        fragments.insert(0, 100, Payload("a"))
        removed = fragments.remove_range(40, 20)
        assert [(f.offset, f.size) for f in fragments] == [(0, 40), (60, 40)]
        # The tail keeps a payload shifted by its distance from the
        # original start, so (offset -> target) mapping stays correct.
        tail = fragments.find(60)
        assert tail.payload.base == 60
        assert removed[0].payload.base == 40

    def test_split_head(self):
        fragments = FragmentList()
        fragments.insert(0, 100, Payload("a"))
        fragments.remove_range(0, 30)
        remaining = list(fragments)[0]
        assert (remaining.offset, remaining.size) == (30, 70)
        assert remaining.payload.base == 30

    def test_remove_spanning_multiple(self):
        fragments = FragmentList()
        fragments.insert(0, 10, Payload("a"))
        fragments.insert(10, 10, Payload("b"))
        fragments.insert(20, 10, Payload("c"))
        removed = fragments.remove_range(5, 20)
        assert [(f.offset, f.size) for f in fragments] == [(0, 5), (25, 5)]
        assert len(removed) == 3

    def test_remove_untouched(self):
        fragments = FragmentList()
        fragments.insert(0, 10, Payload("a"))
        assert fragments.remove_range(50, 10) == []
        assert len(fragments) == 1


class TestMisc:
    def test_remove_if(self):
        fragments = FragmentList()
        fragments.insert(0, 10, Payload("a"))
        fragments.insert(10, 10, Payload("b"))
        assert fragments.remove_if(lambda p: p.tag == "a") == 1
        assert [f.payload.tag for f in fragments] == ["b"]

    def test_replace_payloads(self):
        fragments = FragmentList()
        fragments.insert(0, 10, Payload("a"))
        fragments.insert(10, 10, Payload("a"))
        count = fragments.replace_payloads(
            Payload("a"), lambda f: Payload("z", f.offset))
        assert count == 2
        assert all(f.payload.tag == "z" for f in fragments)

    def test_bool_and_clear(self):
        fragments = FragmentList()
        assert not fragments
        fragments.insert(0, 10, Payload("a"))
        assert fragments
        fragments.clear()
        assert not fragments
