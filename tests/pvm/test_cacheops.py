"""Explicit cache access, move semantics, caps, and the unified cache."""

import pytest

from repro.errors import AccessViolation, InvalidOperation
from repro.gmi.interface import CopyPolicy
from repro.gmi.types import AccessMode, Protection
from repro.gmi.upcalls import SegmentProvider, ZeroFillProvider
from repro.units import KB

PAGE = 8 * KB


@pytest.fixture
def make(pvm):
    def factory(name=None):
        return pvm.cache_create(ZeroFillProvider(), name=name)
    return factory


class TestExplicitAccess:
    def test_write_read_roundtrip_spanning_pages(self, pvm, make):
        cache = make()
        payload = bytes(range(256)) * 96          # 24 KB = 3 pages
        cache.write(PAGE - 100, payload)
        assert cache.read(PAGE - 100, len(payload)) == payload

    def test_read_of_unwritten_data_is_zero(self, pvm, make):
        cache = make()
        assert cache.read(5 * PAGE, 16) == bytes(16)

    def test_negative_read_rejected(self, pvm, make):
        with pytest.raises(InvalidOperation):
            make().read(-1, 10)


class TestUnifiedCache:
    """Section 3.2: one cache for mapped and read/write access — the
    dual-caching problem cannot arise."""

    def test_mapped_write_visible_to_explicit_read(self, pvm, ctx, make):
        cache = make()
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        pvm.user_write(ctx, 0x40000 + 10, b"mapped")
        assert cache.read(10, 6) == b"mapped"

    def test_explicit_write_visible_to_mapped_read(self, pvm, ctx, make):
        cache = make()
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        cache.write(20, b"explicit")
        assert pvm.user_read(ctx, 0x40000 + 20, 8) == b"explicit"

    def test_single_frame_for_both_paths(self, pvm, ctx, make):
        cache = make()
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        pvm.user_write(ctx, 0x40000, b"x")
        cache.read(0, 1)
        assert len(cache.pages) == 1
        assert pvm.resident_page_count == 1


class TestMove:
    def test_aligned_move_reassigns_frames(self, pvm, make):
        src, dst = make("src"), make("dst")
        src.write(0, b"move me")
        frame = src.pages[0].frame
        src.move(0, dst, 0, PAGE)
        assert dst.pages[0].frame == frame          # no copy happened
        assert dst.read(0, 7) == b"move me"
        assert 0 not in src.pages                   # source undefined

    def test_move_with_offset_translation(self, pvm, make):
        src, dst = make("src"), make("dst")
        src.write(2 * PAGE, b"shifted")
        src.move(2 * PAGE, dst, 5 * PAGE, PAGE)
        assert dst.read(5 * PAGE, 7) == b"shifted"

    def test_unaligned_move_copies_and_clears(self, pvm, make):
        src, dst = make("src"), make("dst")
        src.write(0, b"AAAABBBB")
        src.move(4, dst, 0, 4)
        assert dst.read(0, 4) == b"BBBB"

    def test_move_of_stubbed_page_degrades_to_copy(self, pvm, make):
        """A page with attached COW stubs cannot change identity."""
        src, dst, other = make("src"), make("dst"), make("other")
        src.write(0, b"shared")
        src.copy(0, other, 0, PAGE, policy=CopyPolicy.PER_PAGE)
        src.move(0, dst, 0, PAGE)
        assert dst.read(0, 6) == b"shared"
        assert other.read(0, 6) == b"shared"        # stub content preserved

    def test_move_of_guarded_page_preserves_history(self, pvm, make):
        src, dst, child = make("src"), make("dst"), make("child")
        src.write(0, b"original")
        src.copy(0, child, 0, PAGE, policy=CopyPolicy.HISTORY)
        src.move(0, dst, 0, PAGE)
        assert child.read(0, 8) == b"original"
        assert dst.read(0, 8) == b"original"


class TestSetProtection:
    def test_write_cap_blocks_mapped_write(self, pvm, ctx, make):
        cache = make()
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        pvm.user_write(ctx, 0x40000, b"before")
        cache.set_protection(0, PAGE, Protection.READ)
        with pytest.raises(AccessViolation):
            pvm.user_write(ctx, 0x40000, b"after")
        assert pvm.user_read(ctx, 0x40000, 6) == b"before"

    def test_lifting_cap_restores_write(self, pvm, ctx, make):
        cache = make()
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        cache.set_protection(0, PAGE, Protection.READ)
        cache.set_protection(0, PAGE, Protection.RWX)
        pvm.user_write(ctx, 0x40000, b"ok")
        assert pvm.user_read(ctx, 0x40000, 2) == b"ok"

    def test_write_cap_triggers_get_write_access(self, pvm, ctx):
        """A DSM manager can grant write access during the upcall."""

        class CoherenceProvider(SegmentProvider):
            def __init__(self):
                self.granted = []

            def pull_in(self, cache, offset, size, access_mode):
                cache.fill_zero(offset, size)

            def get_write_access(self, cache, offset, size):
                self.granted.append(offset)
                cache.set_protection(offset, size, Protection.RWX)

            def push_out(self, cache, offset, size):
                cache.copy_back(offset, size)

            def segment_create(self, cache):
                return "dsm"

        provider = CoherenceProvider()
        cache = pvm.cache_create(provider)
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        pvm.user_read(ctx, 0x40000, 1)
        cache.set_protection(0, PAGE, Protection.READ)
        pvm.user_write(ctx, 0x40000, b"dsm write")
        assert provider.granted == [0]
        assert pvm.user_read(ctx, 0x40000, 9) == b"dsm write"


class TestInvalidate:
    def test_invalidate_drops_without_saving(self, pvm, make):
        cache = make()
        cache.write(0, b"volatile")
        cache.invalidate(0, PAGE)
        assert 0 not in cache.pages
        # Re-reading pulls zeroes: the write was never saved.
        assert cache.read(0, 8) == bytes(8)

    def test_invalidate_materializes_dependent_stubs(self, pvm, make):
        src, dst = make("src"), make("dst")
        src.write(0, b"needed")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.PER_PAGE)
        src.invalidate(0, PAGE)
        assert dst.read(0, 6) == b"needed"

    def test_invalidate_skips_pinned(self, pvm, make):
        cache = make()
        cache.write(0, b"pinned")
        cache.lock_in_memory(0, PAGE)
        cache.invalidate(0, PAGE)
        assert cache.read(0, 6) == b"pinned"


class TestFillSemantics:
    def test_fill_up_resolves_only_aligned(self, pvm, make):
        cache = make()
        with pytest.raises(InvalidOperation):
            cache.fill_up(100, b"data")

    def test_spontaneous_fill_then_write_needs_grant(self, pvm, ctx):
        """Unsolicited cached data is read-only until getWriteAccess."""

        class PushyProvider(SegmentProvider):
            def __init__(self):
                self.write_upcalls = 0

            def pull_in(self, cache, offset, size, access_mode):
                cache.fill_zero(offset, size)

            def get_write_access(self, cache, offset, size):
                self.write_upcalls += 1

            def push_out(self, cache, offset, size):
                cache.copy_back(offset, size)

            def segment_create(self, cache):
                return "pushy"

        provider = PushyProvider()
        cache = pvm.cache_create(provider)
        cache.fill_up(0, b"pushed data")           # spontaneous caching
        assert cache.read(0, 11) == b"pushed data"
        cache.write(0, b"W")
        assert provider.write_upcalls == 1

    def test_fill_up_multi_page(self, pvm, make):
        cache = make()
        data = b"\x11" * PAGE + b"\x22" * PAGE
        cache.fill_up(0, data)
        assert cache.read(0, 1) == b"\x11"
        assert cache.read(PAGE, 1) == b"\x22"
        assert len(cache.pages) == 2

    def test_copy_back_with_holes(self, pvm, make):
        cache = make()
        cache.write(PAGE, b"island")
        blob = cache.copy_back(0, 2 * PAGE)
        assert blob[:PAGE] == bytes(PAGE)
        assert blob[PAGE:PAGE + 6] == b"island"

    def test_move_back_surrenders_pages(self, pvm, make):
        cache = make()
        cache.write(0, b"gone after")
        blob = cache.move_back(0, PAGE)
        assert blob[:10] == b"gone after"
        assert 0 not in cache.pages
