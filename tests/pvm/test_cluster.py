"""Fault clustering: read-ahead prefaulting with golden accounting.

The contract under test: enabling a cluster policy changes *wall*
behaviour only — provider upcalls drop, but the virtual clock, every
mechanism counter and all user-visible bytes are bit-identical to the
one-page-per-fault run.  Prefaulted frames are invisible (not in the
global map, not resident) until the fault they anticipate adopts them.
"""

import copy

import pytest

from repro.cache.provider import ZeroFillProvider
from repro.engine.cluster import (
    AdaptiveWindow, FixedWindow, NoCluster, make_policy, split_uniform,
)
from repro.gmi.types import Protection
from repro.kernel.clock import CostEvent
from repro.pvm import PagedVirtualMemory
from repro.units import MB

BASE = 0x40000


class CountingProvider(ZeroFillProvider):
    """Zero-fill provider that records its pullIn upcalls."""

    def __init__(self):
        super().__init__()
        self.pulls = []

    def pull_in(self, cache, offset, size, access_mode):
        self.pulls.append((offset, size))
        super().pull_in(cache, offset, size, access_mode)


class LumpyProvider(CountingProvider):
    """Batched provider whose ranged upcall is *not* per-page-uniform:
    it charges one extra event per call, however many pages the call
    covers.  Clustering must detect this and abandon the attempt."""

    def pull_in(self, cache, offset, size, access_mode):
        cache.pvm.clock.charge(CostEvent.BCOPY_BYTE, 1)
        super().pull_in(cache, offset, size, access_mode)


def build(policy, provider=None, pages=16, advice=None, memory=4 * MB):
    vm = PagedVirtualMemory(memory_size=memory, cluster_policy=policy)
    provider = provider if provider is not None else CountingProvider()
    cache = vm.cache_create(provider, name="clu")
    context = vm.context_create("clu")
    context.region_create(BASE, pages * vm.page_size,
                          protection=Protection.RW, cache=cache,
                          offset=0, advice=advice)
    context.switch()
    return vm, context, cache, provider


def touch_sequential(vm, context, pages, write=True):
    page = vm.page_size
    for index in range(pages):
        if write:
            vm.user_write(context, BASE + index * page, bytes([index + 1]))
        else:
            vm.user_read(context, BASE + index * page, 1)


def counters_sans_cluster(vm):
    # Drop the mechanism-shape counters clustering is allowed to move
    # (window sizes, pull spans, queued requests); the accounting ones
    # must stay bit-identical.
    counters = dict(vm.metrics_snapshot()["counters"])
    return {key: value for key, value in counters.items()
            if not key.startswith(("engine.cluster.", "engine.inflight.",
                                   "io.queue."))}


# ---------------------------------------------------------------------------
# The headline property: fewer upcalls, identical accounting.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("policy", ["fixed:4", "adaptive"])
@pytest.mark.parametrize("write", [True, False])
def test_clustering_saves_upcalls_with_identical_accounting(policy, write):
    base_vm, base_ctx, _, base_provider = build(None)
    clu_vm, clu_ctx, _, clu_provider = build(policy)

    touch_sequential(base_vm, base_ctx, 16, write=write)
    touch_sequential(clu_vm, clu_ctx, 16, write=write)

    assert len(base_provider.pulls) == 16
    assert len(clu_provider.pulls) < 16
    saved = clu_vm.metrics_snapshot()["counters"][
        "engine.cluster.faults_saved"]
    # Every fault either pulled its own single page or adopted a
    # parked one (ranged prefault pulls cover multiple pages).
    own_pulls = sum(1 for _, size in clu_provider.pulls
                    if size == clu_vm.page_size)
    assert saved == 16 - own_pulls

    assert clu_vm.clock.now() == base_vm.clock.now()
    assert counters_sans_cluster(clu_vm) == counters_sans_cluster(base_vm)

    page = clu_vm.page_size
    for index in range(16):
        assert clu_vm.user_read(clu_ctx, BASE + index * page, 1) == \
            base_vm.user_read(base_ctx, BASE + index * page, 1)


def test_random_advice_disables_read_ahead():
    vm, ctx, _, provider = build("adaptive", advice="random")
    touch_sequential(vm, ctx, 8)
    assert len(provider.pulls) == 8
    counters = vm.metrics_snapshot()["counters"]
    assert "engine.cluster.faults_saved" not in counters


# ---------------------------------------------------------------------------
# Window edge cases.
# ---------------------------------------------------------------------------

def test_window_clamps_at_region_boundary():
    # A 4-page region with a 16-page window: the prefault run must stop
    # at the region end, and every page must still resolve correctly.
    vm, ctx, cache, provider = build("fixed:16", pages=4)
    touch_sequential(vm, ctx, 4)
    # Fault 0 pulls its own page, then the window opens but is clamped
    # to the 3 remaining pages (one ranged pull); faults 1-3 adopt.
    assert provider.pulls == [(0, vm.page_size),
                              (vm.page_size, 3 * vm.page_size)]
    assert len(vm._cluster_index) == 0
    # Nothing speculative may outlive the region span.
    assert vm.metrics_snapshot()["counters"].get(
        "engine.cluster.wasted_prefault", 0) == 0


def test_window_stops_at_resident_page():
    vm, ctx, cache, provider = build("fixed:8", pages=16)
    page = vm.page_size
    # Make page 3 resident through the cache interface first.
    cache.write(3 * page, b"\xAA")
    provider.pulls.clear()
    vm.user_write(ctx, BASE, b"\x01")          # fault page 0, window opens
    # The leading run after page 0 is pages 1-2 only — 3 is resident.
    assert provider.pulls == [(0, page), (page, 2 * page)]
    vm.user_write(ctx, BASE + page, b"\x02")   # adopts, no new pull
    assert provider.pulls == [(0, page), (page, 2 * page)]
    assert vm.user_read(ctx, BASE + 3 * page, 1) == b"\xAA"


def test_prefaulted_pages_are_invisible_until_adopted():
    vm, ctx, cache, provider = build("fixed:8", pages=16)
    page = vm.page_size
    vm.user_write(ctx, BASE, b"\x01")
    vm.user_write(ctx, BASE + page, b"\x02")   # window parks pages 2..9
    parked = len(vm._cluster_index)
    assert parked > 0
    for offset in range(2 * page, (2 + parked) * page, page):
        assert vm.global_map.lookup(cache, offset) is None
        assert offset not in cache.pages
        assert offset not in cache.owned
    # Residency (and so eviction) cannot see them either.
    assert vm.resident_page_count == 2


def test_cow_fault_inside_read_ahead_window():
    # Park prefaults, deferred-copy the region, then write inside the
    # window on both source and copy: history machinery must behave as
    # if the prefaults never existed.
    from repro.gmi.interface import CopyPolicy

    def run(policy):
        vm, ctx, cache, provider = build(policy, pages=16)
        page = vm.page_size
        vm.user_write(ctx, BASE, b"\x01")
        vm.user_write(ctx, BASE + page, b"\x02")   # parks a window
        copy_cache = vm.cache_create(ZeroFillProvider(), name="copy")
        cache.copy(0, copy_cache, 0, 16 * page, policy=CopyPolicy.HISTORY)
        vm.user_write(ctx, BASE + 2 * page, b"\x03")   # write in window
        vm.user_write(ctx, BASE + 3 * page, b"\x04")
        values = [copy_cache.read(index * page, 1) for index in range(6)]
        values.append(cache.read(2 * page, 1))
        return vm, values

    base_vm, base_values = run(None)
    clu_vm, clu_values = run("fixed:8")
    assert clu_values == base_values
    assert clu_vm.clock.now() == base_vm.clock.now()
    assert counters_sans_cluster(clu_vm) == counters_sans_cluster(base_vm)


def test_wasted_prefault_freed_on_cache_release():
    vm, ctx, cache, provider = build("fixed:8", pages=16)
    page = vm.page_size
    free_before = vm.memory.free_frames
    vm.user_write(ctx, BASE, b"\x01")
    vm.user_write(ctx, BASE + page, b"\x02")
    parked = len(vm._cluster_index)
    assert parked > 0
    ctx.destroy()
    cache.destroy()
    assert len(vm._cluster_index) == 0
    counters = vm.metrics_snapshot()["counters"]
    assert counters["engine.cluster.wasted_prefault"] == parked
    # Every frame came back: the two adopted pages were freed by the
    # cache teardown, the parked ones by the cancellation path.
    assert vm.memory.free_frames == free_before


def test_non_uniform_provider_aborts_and_is_memoized():
    base_vm, base_ctx, _, base_provider = build(None, LumpyProvider())
    clu_vm, clu_ctx, clu_cache, clu_provider = build("fixed:4",
                                                     LumpyProvider())
    touch_sequential(base_vm, base_ctx, 8)
    touch_sequential(clu_vm, clu_ctx, 8)
    # The first window attempt fails the even-split check; the cache is
    # remembered as non-uniform, so exactly one speculative ranged call
    # happened and every fault then pulled one page, like the baseline.
    assert clu_cache._cluster_nonuniform is True
    assert len(clu_vm._cluster_index) == 0
    assert len([p for p in clu_provider.pulls
                if p[1] > clu_vm.page_size]) == 1
    assert clu_vm.clock.now() == base_vm.clock.now()
    assert counters_sans_cluster(clu_vm) == counters_sans_cluster(base_vm)


def test_out_of_frames_never_reaches_the_fault_path():
    # 24 frames of RAM, 16-page region: the headroom guard shrinks or
    # skips speculation near exhaustion instead of raising or evicting.
    vm, ctx, cache, provider = build("fixed:8", pages=16,
                                     memory=24 * 8 * 1024)
    touch_sequential(vm, ctx, 16)
    page = vm.page_size
    for index in range(16):
        assert vm.user_read(ctx, BASE + index * page, 1) == \
            bytes([index + 1])


# ---------------------------------------------------------------------------
# Policy unit behaviour.
# ---------------------------------------------------------------------------

class _Region:
    def __init__(self, offset=0, size=1 << 20, advice=None):
        self.offset = offset
        self.size = size
        self.advice = advice


def test_adaptive_window_ramps_and_resets():
    policy = AdaptiveWindow(start=2, max_pages=16)
    region = _Region()
    page = 8192
    assert policy.window(region, 0, page) == 0          # no streak yet
    assert policy.window(region, page, page) == 2       # streak opens
    assert policy.window(region, 2 * page, page) == 4   # doubles
    assert policy.window(region, 3 * page, page) == 8
    assert policy.window(region, 4 * page, page) == 16  # capped
    assert policy.window(region, 5 * page, page) == 16
    assert policy.window(region, 9 * page, page) == 0   # jump resets
    assert policy.window(region, 10 * page, page) == 2  # re-opens


def test_adaptive_window_honours_advice():
    page = 8192
    policy = AdaptiveWindow(start=4, max_pages=16)
    sequential = _Region(advice="sequential")
    assert policy.window(sequential, 0, page) == 4      # opens first fault
    random_region = _Region(advice="random")
    assert policy.window(random_region, 0, page) == 0
    assert policy.window(random_region, page, page) == 0


def test_make_policy_specs():
    assert isinstance(make_policy(None), NoCluster)
    assert isinstance(make_policy("off"), NoCluster)
    assert isinstance(make_policy("adaptive"), AdaptiveWindow)
    fixed = make_policy("fixed:12")
    assert isinstance(fixed, FixedWindow) and fixed.pages == 12
    ready = FixedWindow(3)
    assert make_policy(ready) is ready
    with pytest.raises(ValueError):
        make_policy("bogus")
    with pytest.raises(ValueError):
        make_policy("fixed:0")


def test_split_uniform():
    a, b = CostEvent.PULL_IN, CostEvent.BZERO_PAGE
    assert split_uniform([(a, 2), (b, 4), (a, 2)], 4) == ((a, 1), (b, 1))
    assert split_uniform([(a, 3)], 2) is None            # not divisible
    assert split_uniform([(a, 2), (None, 5)], 2) is None  # diverted advance
    assert split_uniform([], 3) == ()
