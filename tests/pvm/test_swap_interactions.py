"""Deferred copies interacting with swapped-out pages.

Section 4.2: "Considering swapped-out pages presents no extra
difficulty" — these tests hold the paper to it.
"""

import pytest

from repro.gmi.interface import CopyPolicy
from repro.gmi.upcalls import ZeroFillProvider
from repro.units import KB

PAGE = 8 * KB


@pytest.fixture
def make(pvm):
    def factory(name=None, fill=None, pages=3):
        cache = pvm.cache_create(ZeroFillProvider(), name=name)
        if fill is not None:
            for page in range(pages):
                cache.write(page * PAGE, bytes([fill + page]) * PAGE)
        return cache
    return factory


class TestCopyOfSwappedSource:
    def test_history_copy_from_fully_evicted_source(self, pvm, make):
        src = make("src", fill=10)
        src.flush(0, 3 * PAGE)
        assert len(src.pages) == 0
        dst = make("dst")
        src.copy(0, dst, 0, 3 * PAGE, policy=CopyPolicy.HISTORY)
        # Reads walk to src, which pulls back from its swap.
        assert dst.read(0, 2) == bytes([10, 10])
        assert dst.read(2 * PAGE, 2) == bytes([12, 12])

    def test_write_to_swapped_guarded_source(self, pvm, make):
        src = make("src", fill=20)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        src.flush(0, 2 * PAGE)                 # evict after the copy
        src.write(0, b"post-swap write")
        # The pre-image still reached the history object.
        assert dst.read(0, 2) == bytes([20, 20])
        assert src.read(0, 15) == b"post-swap write"

    def test_per_page_copy_of_evicted_page_roundtrip(self, pvm, make):
        src = make("src", fill=30)
        src.flush(PAGE, PAGE)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.PER_PAGE)
        # Page 0: stub -> resident page; page 1: stub -> (cache, offset).
        assert dst.read(PAGE, 2) == bytes([31, 31])
        dst.write(PAGE, b"own now")
        assert dst.read(PAGE, 7) == b"own now"
        assert src.read(PAGE, 2) == bytes([31, 31])


class TestHistoryPageSwap:
    def test_preimage_evicted_then_source_rewritten(self, pvm, make):
        """The owned-offset marker prevents a second (corrupting) push."""
        src = make("src", fill=40)
        dst = make("dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        src.write(0, b"first")                 # pre-image 40.. -> dst
        dst.flush(0, PAGE)                     # evict the pre-image
        src.write(0, b"second")                # must NOT push "first"
        assert dst.read(0, 2) == bytes([40, 40])

    def test_collapse_pulls_swapped_parent_pages(self, pvm, make):
        src = make("src", fill=50, pages=2)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        src.flush(0, 2 * PAGE)                 # parent data on swap
        src.destroy()
        moved = pvm.collapse_history(dst)
        assert moved == 2
        assert dst.read(0, 2) == bytes([50, 50])
        assert dst.read(PAGE, 2) == bytes([51, 51])


class TestMappedSwapRoundtrips:
    def test_mapped_page_survives_explicit_flush(self, pvm, ctx, make):
        from repro.gmi.types import Protection
        cache = make("seg")
        ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        pvm.user_write(ctx, 0x40000, b"mapped then flushed")
        cache.flush(0, PAGE)
        assert pvm.mmu.lookup(ctx.space, 0x40000) is None   # shot down
        assert pvm.user_read(ctx, 0x40000, 19) == b"mapped then flushed"

    def test_shared_read_mapping_of_parent_page_survives_eviction(
            self, pvm, ctx, make):
        from repro.gmi.types import Protection
        src = make("src", fill=60)
        dst = make("dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=dst,
                          offset=0)
        assert pvm.user_read(ctx, 0x40000, 2) == bytes([60, 60])
        # Evict the source page that backs dst's mapping.
        src.flush(0, PAGE)
        assert pvm.user_read(ctx, 0x40000, 2) == bytes([60, 60])
