"""Fragment-granular history trees: multiple guards, partial overlaps,
and the working-object union rule."""

import pytest

from repro.gmi.interface import CopyPolicy
from repro.gmi.upcalls import ZeroFillProvider
from repro.units import KB

PAGE = 8 * KB


@pytest.fixture
def make(pvm):
    def factory(name=None, fill=None, pages=6):
        cache = pvm.cache_create(ZeroFillProvider(), name=name)
        if fill is not None:
            for page in range(pages):
                cache.write(page * PAGE, bytes([fill + page]) * PAGE)
        return cache
    return factory


class TestDisjointFragmentCopies:
    def test_two_fragments_to_two_destinations(self, pvm, make):
        """Non-overlapping guards coexist without a working object."""
        src = make("src", fill=1)
        low = make("low")
        high = make("high")
        src.copy(0, low, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        src.copy(3 * PAGE, high, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        assert len(src.guards) == 2
        # No working object was needed: the fragments do not overlap.
        assert not any(cache.is_history for cache in pvm.caches())
        src.write(0, b"low change")
        src.write(3 * PAGE, b"high change")
        assert low.read(0, 2) == bytes([1, 1])
        assert high.read(0, 2) == bytes([4, 4])

    def test_fragment_boundaries_respected(self, pvm, make):
        src = make("src", fill=1)
        low = make("low")
        src.copy(0, low, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        # Writing OUTSIDE the copied fragment pushes nothing.
        src.write(4 * PAGE, b"unguarded")
        assert len(low.pages) == 0

    def test_same_destination_two_source_fragments(self, pvm, make):
        src = make("src", fill=1)
        dst = make("dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        src.copy(4 * PAGE, dst, PAGE, PAGE, policy=CopyPolicy.HISTORY)
        assert dst.read(0, 2) == bytes([1, 1])
        assert dst.read(PAGE, 2) == bytes([5, 5])
        src.write(0, b"x")
        src.write(4 * PAGE, b"y")
        assert dst.read(0, 2) == bytes([1, 1])
        assert dst.read(PAGE, 2) == bytes([5, 5])


class TestOverlappingFragmentCopies:
    def test_partial_overlap_inserts_working_object(self, pvm, make):
        src = make("src", fill=1)
        first = make("first")
        second = make("second")
        src.copy(0, first, 0, 3 * PAGE, policy=CopyPolicy.HISTORY)
        # Overlaps pages 2-4 with the existing guard over 0-2.
        src.copy(2 * PAGE, second, 0, 3 * PAGE, policy=CopyPolicy.HISTORY)
        working = src.history
        assert working is not None and working.is_history
        # The union of both fragments is guarded through w.
        src.write(0, b"a")          # only `first` cares
        src.write(2 * PAGE, b"b")   # both care
        src.write(4 * PAGE, b"c")   # only `second` cares
        assert first.read(0, 2) == bytes([1, 1])
        assert first.read(2 * PAGE, 2) == bytes([3, 3])
        assert second.read(0, 2) == bytes([3, 3])
        assert second.read(2 * PAGE, 2) == bytes([5, 5])

    def test_three_overlapping_copies_stack_working_objects(self, pvm,
                                                            make):
        src = make("src", fill=10)
        copies = []
        for index in range(3):
            copy = make(f"c{index}")
            src.copy(0, copy, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
            copies.append(copy)
        internal = [cache for cache in pvm.caches() if cache.is_history]
        assert len(internal) == 2
        src.write(0, b"final")
        for copy in copies:
            assert copy.read(0, 2) == bytes([10, 10])

    def test_copies_at_different_times_see_different_snapshots(self, pvm,
                                                               make):
        src = make("src", fill=1)
        early = make("early")
        src.copy(0, early, 0, PAGE, policy=CopyPolicy.HISTORY)
        src.write(0, b"v2")
        late = make("late")
        src.copy(0, late, 0, PAGE, policy=CopyPolicy.HISTORY)
        src.write(0, b"v3")
        assert early.read(0, 2) == bytes([1, 1])    # snapshot at copy 1
        assert late.read(0, 2) == b"v2"             # snapshot at copy 2
        assert src.read(0, 2) == b"v3"


class TestGuardsSurviveDestinationChanges:
    def test_destroying_one_fragment_destination_keeps_other(self, pvm,
                                                             make):
        src = make("src", fill=1)
        low = make("low")
        high = make("high")
        src.copy(0, low, 0, PAGE, policy=CopyPolicy.HISTORY)
        src.copy(2 * PAGE, high, 0, PAGE, policy=CopyPolicy.HISTORY)
        low.destroy()
        assert len(src.guards) == 1
        src.write(2 * PAGE, b"still guarded")
        assert high.read(0, 2) == bytes([3, 3])

    def test_overwriting_copy_destination_releases_guard_duty(self, pvm,
                                                              make):
        """Copying NEW data over a history destination: the old pre-image
        obligation is satisfied first, then replaced."""
        src_a = make("a", fill=1)
        src_b = make("b", fill=100)
        dst = make("dst")
        src_a.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        src_b.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        # dst now reflects b; a's write no longer affects dst.
        src_a.write(0, b"gone")
        assert dst.read(0, 2) == bytes([100, 100])
