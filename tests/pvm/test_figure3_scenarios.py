"""The paper's Figure 3 scenarios, reproduced step by step.

Each test drives exactly the copy/write sequence of one sub-figure and
asserts both the tree *shape* (parents, guards, children, working
objects) and the page *placement and values* the figure shows.
"""

import pytest

from repro.gmi.interface import CopyPolicy
from repro.gmi.upcalls import ZeroFillProvider
from repro.units import KB

PAGE = 8 * KB


def page_value(tag, prime=0):
    """A full page holding a recognisable value; 2' is page 2 rewritten."""
    return bytes([tag, prime]) * (PAGE // 2)


@pytest.fixture
def rig(pvm):
    def make(name):
        return pvm.cache_create(ZeroFillProvider(), name=name)
    src = make("src")
    for page in range(4):
        src.write(page * PAGE, page_value(page + 1))
    return pvm, make, src


def hist_copy(src, dst, pages=3):
    src.copy(0, dst, 0, pages * PAGE, policy=CopyPolicy.HISTORY)


class TestFigure3a:
    """cpy1 is a COW of pages 1-3 of src; page 2 updated in src,
    page 3 updated in cpy1."""

    def test_tree_shape(self, rig):
        pvm, make, src = rig
        cpy1 = make("cpy1")
        hist_copy(src, cpy1)
        # cpy1 is src's single descendant and its history object.
        assert src.history is cpy1
        assert src.children == {cpy1}
        assert cpy1.ancestry(0) == [src]

    def test_page_placement_and_values(self, rig):
        pvm, make, src = rig
        cpy1 = make("cpy1")
        hist_copy(src, cpy1)
        src.write(1 * PAGE, page_value(2, prime=1))    # 2'
        cpy1.write(2 * PAGE, page_value(3, prime=1))   # 3'
        # src holds 1, 2', 3 ; cpy1 holds 2 (original), 3'.
        assert src.read(0, PAGE) == page_value(1)
        assert src.read(PAGE, PAGE) == page_value(2, 1)
        assert src.read(2 * PAGE, PAGE) == page_value(3)
        assert sorted(cpy1.pages) == [PAGE, 2 * PAGE]
        assert cpy1.read(PAGE, PAGE) == page_value(2)       # original 2
        assert cpy1.read(2 * PAGE, PAGE) == page_value(3, 1)

    def test_cache_miss_resolved_in_src(self, rig):
        """A miss on page 1 in cpy1 resolves by looking it up in src."""
        pvm, make, src = rig
        cpy1 = make("cpy1")
        hist_copy(src, cpy1)
        assert cpy1.read(0, PAGE) == page_value(1)
        # No private frame was allocated: the value came from src.
        assert 0 not in cpy1.pages

    def test_source_pages_protected_read_only(self, rig):
        """Grey frames in the figure: hardware-protected read-only."""
        from repro.gmi.types import Protection
        from repro.hardware.mmu import Prot
        pvm, make, src = rig
        ctx = pvm.context_create()
        region = ctx.region_create(0x40000, 3 * PAGE, protection=Protection.RW,
                                   cache=src, offset=0)
        pvm.user_read(ctx, 0x40000, 1)     # map page 1
        cpy1 = make("cpy1")
        hist_copy(src, cpy1)
        mapping = pvm.mmu.lookup(ctx.space, 0x40000)
        assert mapping is not None
        assert not (mapping.prot & Prot.WRITE)

    def test_write_violation_in_source_mapped(self, rig):
        """Mapped write to a protected src page pushes the original to
        the history object and re-enables writing."""
        from repro.gmi.types import Protection
        pvm, make, src = rig
        ctx = pvm.context_create()
        ctx.region_create(0x40000, 3 * PAGE, protection=Protection.RW,
                          cache=src, offset=0)
        pvm.user_read(ctx, 0x40000 + PAGE, 1)
        cpy1 = make("cpy1")
        hist_copy(src, cpy1)
        pvm.user_write(ctx, 0x40000 + PAGE, b"via mapping")
        assert cpy1.read(PAGE, PAGE) == page_value(2)
        assert pvm.user_read(ctx, 0x40000 + PAGE, 11) == b"via mapping"

    def test_second_write_to_same_page_no_second_push(self, rig):
        pvm, make, src = rig
        cpy1 = make("cpy1")
        hist_copy(src, cpy1)
        src.write(PAGE, b"first")
        frame_after_first = cpy1.pages[PAGE].frame
        src.write(PAGE, b"second")
        assert cpy1.pages[PAGE].frame == frame_after_first
        assert cpy1.read(PAGE, PAGE) == page_value(2)


class TestFigure3b:
    """src pages 1-3 copied to cpy1; src page 2 modified; cpy1 copied
    to copyOfCpy1; cpy1 page 3 modified: both src and copyOfCpy1 get a
    frame with the original value."""

    def test_chain_shape(self, rig):
        pvm, make, src = rig
        cpy1 = make("cpy1")
        hist_copy(src, cpy1)
        copy_of_cpy1 = make("copyOfCpy1")
        hist_copy(cpy1, copy_of_cpy1)
        assert cpy1.history is copy_of_cpy1
        assert cpy1.children == {copy_of_cpy1}
        assert copy_of_cpy1.ancestry(0) == [cpy1, src]

    def test_both_get_original_on_middle_write(self, rig):
        pvm, make, src = rig
        cpy1 = make("cpy1")
        hist_copy(src, cpy1)
        src.write(PAGE, page_value(2, 1))              # 2' in src
        copy_of_cpy1 = make("copyOfCpy1")
        hist_copy(cpy1, copy_of_cpy1)
        cpy1.write(2 * PAGE, page_value(3, 1))         # 3' in cpy1
        # Both src and copyOfCpy1 keep the original page 3.
        assert src.read(2 * PAGE, PAGE) == page_value(3)
        assert copy_of_cpy1.read(2 * PAGE, PAGE) == page_value(3)
        assert cpy1.read(2 * PAGE, PAGE) == page_value(3, 1)
        # copyOfCpy1 holds its own frame for page 3 (4.2.3's rule).
        assert 2 * PAGE in copy_of_cpy1.pages

    def test_reads_through_two_levels(self, rig):
        pvm, make, src = rig
        cpy1 = make("cpy1")
        hist_copy(src, cpy1)
        src.write(PAGE, page_value(2, 1))
        copy_of_cpy1 = make("copyOfCpy1")
        hist_copy(cpy1, copy_of_cpy1)
        # Page 1 of both copies read from src.
        assert cpy1.read(0, PAGE) == page_value(1)
        assert copy_of_cpy1.read(0, PAGE) == page_value(1)
        # Page 2 of copyOfCpy1 read from cpy1 (the pre-2' original).
        assert copy_of_cpy1.read(PAGE, PAGE) == page_value(2)


class TestFigure3c:
    """Pages 1-4 of src copied twice (cpy1, cpy2): a working object w1
    is created and inserted; then page 3 of src, page 3 of cpy1 and
    page 4 of cpy2 are modified."""

    def build(self, rig):
        pvm, make, src = rig
        cpy1 = make("cpy1")
        src.copy(0, cpy1, 0, 4 * PAGE, policy=CopyPolicy.HISTORY)
        cpy2 = make("cpy2")
        src.copy(0, cpy2, 0, 4 * PAGE, policy=CopyPolicy.HISTORY)
        return pvm, src, cpy1, cpy2

    def test_working_object_inserted(self, rig):
        pvm, src, cpy1, cpy2 = self.build(rig)
        w1 = src.history
        assert w1 is not None and w1.is_history
        assert w1 is not cpy1 and w1 is not cpy2
        # Shape invariant: binary tree, one descendant per source.
        assert src.children == {w1}
        assert w1.children == {cpy1, cpy2}
        assert cpy1.ancestry(0) == [w1, src]
        assert cpy2.ancestry(0) == [w1, src]

    def test_declared_via_segment_create(self, rig):
        """The MM declares unilaterally-created caches upward (3.3.3)."""
        pvm, src, cpy1, cpy2 = self.build(rig)
        assert src.history.segment is not None

    def test_modifications(self, rig):
        pvm, src, cpy1, cpy2 = self.build(rig)
        w1 = src.history
        src.write(2 * PAGE, page_value(3, 1))
        cpy1.write(2 * PAGE, page_value(3, 2))
        cpy2.write(3 * PAGE, page_value(4, 1))
        # Original page 3 landed in w1; both copies resolve correctly.
        assert 2 * PAGE in w1.pages
        assert cpy2.read(2 * PAGE, PAGE) == page_value(3)
        assert cpy1.read(2 * PAGE, PAGE) == page_value(3, 2)
        assert src.read(2 * PAGE, PAGE) == page_value(3, 1)
        # Page 4: cpy2 private, cpy1 and src still original.
        assert cpy2.read(3 * PAGE, PAGE) == page_value(4, 1)
        assert cpy1.read(3 * PAGE, PAGE) == page_value(4)
        assert src.read(3 * PAGE, PAGE) == page_value(4)
        # Misses on page 1 resolved in src through w1.
        assert cpy1.read(0, PAGE) == page_value(1)
        assert cpy2.read(0, PAGE) == page_value(1)


class TestFigure3d:
    """src copied three times: two working objects stacked."""

    def test_two_working_objects(self, rig):
        pvm, make, src = rig
        copies = []
        for index in range(3):
            copy = make(f"cpy{index + 1}")
            src.copy(0, copy, 0, 4 * PAGE, policy=CopyPolicy.HISTORY)
            copies.append(copy)
        w2 = src.history
        assert w2.is_history
        assert src.children == {w2}
        # w2's children: the third copy and the first working object.
        children_names = {child.name for child in w2.children}
        assert copies[2].name in children_names
        w1 = next(child for child in w2.children if child.is_history)
        assert w1.children == {copies[0], copies[1]}
        # Full chains: cpy1 -> w1 -> w2 -> src.
        assert copies[0].ancestry(0) == [w1, w2, src]
        assert copies[2].ancestry(0) == [w2, src]

    def test_values_after_source_write(self, rig):
        pvm, make, src = rig
        copies = []
        for index in range(3):
            copy = make(f"cpy{index + 1}")
            src.copy(0, copy, 0, 4 * PAGE, policy=CopyPolicy.HISTORY)
            copies.append(copy)
        src.write(0, page_value(1, 9))
        for copy in copies:
            assert copy.read(0, PAGE) == page_value(1)
        assert src.read(0, PAGE) == page_value(1, 9)
