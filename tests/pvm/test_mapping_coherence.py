"""Mapping-coherence regressions (found by the hypothesis model).

Read mappings may present an *ancestor's* frame on a copy cache's
behalf; whenever the copy gains its own version — COW materialization,
stub resolution, copy-over, move — every translation serving that
(cache, offset) must be shot down, in every context, or stale bytes
stay visible through the old frame.
"""

import pytest

from repro.gmi.interface import CopyPolicy
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.units import KB

PAGE = 8 * KB


@pytest.fixture
def make(pvm):
    def factory(name=None, fill=None, pages=3):
        cache = pvm.cache_create(ZeroFillProvider(), name=name)
        if fill is not None:
            for page in range(pages):
                cache.write(page * PAGE, bytes([fill + page]) * PAGE)
        return cache
    return factory


class TestCowResolutionShootdown:
    def test_second_context_sees_private_copy(self, pvm, make):
        """ctx B's read mapping (ancestor frame) must not survive the
        copy's COW materialization triggered from ctx A."""
        src = make("src", fill=9)
        dst = make("dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        a = pvm.context_create("a")
        b = pvm.context_create("b")
        a.region_create(0x40000, PAGE, protection=Protection.RW, cache=dst,
                        offset=0)
        b.region_create(0x40000, PAGE, protection=Protection.RW, cache=dst,
                        offset=0)
        # Both contexts read: both map src's frame read-only.
        assert pvm.user_read(a, 0x40000, 2) == bytes([9, 9])
        assert pvm.user_read(b, 0x40000, 2) == bytes([9, 9])
        # A writes: dst materializes a private page.
        pvm.user_write(a, 0x40000, b"private!")
        # B must see the new content, not src's stale frame.
        assert pvm.user_read(b, 0x40000, 8) == b"private!"
        assert src.read(0, 2) == bytes([9, 9])

    def test_explicit_write_invalidates_mapped_readers(self, pvm, make):
        """COW resolution via cache.write (no mapping involved) must
        still invalidate mapped readers of the copy."""
        src = make("src", fill=5)
        dst = make("dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        ctx = pvm.context_create()
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=dst,
                          offset=0)
        assert pvm.user_read(ctx, 0x40000, 2) == bytes([5, 5])
        dst.write(0, b"via explicit write")
        assert pvm.user_read(ctx, 0x40000, 18) == b"via explicit write"

    def test_stub_resolution_invalidates_readers(self, pvm, make):
        src = make("src", fill=7)
        dst = make("dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.PER_PAGE)
        ctx = pvm.context_create()
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=dst,
                          offset=0)
        assert pvm.user_read(ctx, 0x40000, 2) == bytes([7, 7])
        dst.write(0, b"resolved")              # stub -> private page
        assert pvm.user_read(ctx, 0x40000, 8) == b"resolved"


class TestCopyOverShootdown:
    def test_mapped_reader_sees_new_parent_after_copy_over(self, pvm,
                                                           make):
        """Re-copying over a mapped destination must invalidate the
        mapping that presented the OLD parent's frame."""
        old = make("old", fill=1)
        new = make("new", fill=50)
        dst = make("dst")
        old.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        ctx = pvm.context_create()
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=dst,
                          offset=0)
        assert pvm.user_read(ctx, 0x40000, 2) == bytes([1, 1])
        new.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        assert pvm.user_read(ctx, 0x40000, 2) == bytes([50, 50])

    def test_mapped_reader_sees_moved_content(self, pvm, make):
        source = make("source", fill=30)
        dst = make("dst", fill=1)
        ctx = pvm.context_create()
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=dst,
                          offset=0)
        assert pvm.user_read(ctx, 0x40000, 2) == bytes([1, 1])
        source.move(0, dst, 0, PAGE)
        assert pvm.user_read(ctx, 0x40000, 2) == bytes([30, 30])


class TestDetachedStubStaleness:
    def test_stub_detached_then_source_overwritten_by_copy(self, pvm,
                                                           make):
        """A stub detached to (cache, offset) pins the copy-time value
        even if that offset later becomes a copy destination."""
        origin = make("origin")                # never resident at page 3
        holder = make("holder")
        origin.copy(2 * PAGE, holder, 0, PAGE, policy=CopyPolicy.PER_PAGE)
        replacement = make("replacement", fill=80)
        replacement.copy(0, origin, 2 * PAGE, PAGE,
                         policy=CopyPolicy.HISTORY)
        # holder still reflects origin's value at copy time (zeroes).
        assert holder.read(0, 4) == bytes(4)
        assert origin.read(2 * PAGE, 2) == bytes([80, 80])

    def test_stub_detached_then_source_pulled_and_written(self, pvm,
                                                          make):
        src = make("src")
        src.write(0, b"snapshot")
        dst = make("dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.PER_PAGE)
        src.flush(0, PAGE)                     # stub detaches to (src, 0)
        src.write(0, b"mutated!")              # pull-back re-threads
        assert dst.read(0, 8) == b"snapshot"
        assert src.read(0, 8) == b"mutated!"
