"""PVM edge cases: partial caps, mixed fragments, splits of locked
regions, moves under constraints, address allocation."""

import pytest

from repro.errors import AccessViolation, InvalidOperation
from repro.gmi.interface import CopyPolicy
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.units import KB

PAGE = 8 * KB


@pytest.fixture
def make(pvm):
    def factory(name=None, fill=None, pages=4):
        cache = pvm.cache_create(ZeroFillProvider(), name=name)
        if fill is not None:
            for page in range(pages):
                cache.write(page * PAGE, bytes([fill + page]) * PAGE)
        return cache
    return factory


class TestPartialProtectionCaps:
    def test_cap_applies_only_to_its_range(self, pvm, ctx, make):
        cache = make()
        ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        pvm.user_write(ctx, 0x40000, b"a")
        pvm.user_write(ctx, 0x40000 + PAGE, b"b")
        cache.set_protection(0, PAGE, Protection.READ)
        with pytest.raises(AccessViolation):
            pvm.user_write(ctx, 0x40000, b"x")
        pvm.user_write(ctx, 0x40000 + PAGE, b"fine")  # other page untouched

    def test_overlapping_cap_replaces(self, pvm, ctx, make):
        cache = make()
        ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        cache.set_protection(0, 2 * PAGE, Protection.READ)
        cache.set_protection(0, PAGE, Protection.RWX)
        pvm.user_write(ctx, 0x40000, b"ok now")
        with pytest.raises(AccessViolation):
            pvm.user_write(ctx, 0x40000 + PAGE, b"still capped")

    def test_read_cap_unmaps(self, pvm, ctx, make):
        cache = make(fill=1)
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        pvm.user_read(ctx, 0x40000, 1)
        cache.set_protection(0, PAGE, Protection.NONE)
        assert pvm.mmu.lookup(ctx.space, 0x40000) is None


class TestMixedFragmentReads:
    def test_read_spanning_hole_parent_and_own(self, pvm, make):
        """One read crossing: own page | parent-covered | zero hole."""
        src = make("src", fill=10, pages=2)
        dst = make("dst")
        dst.write(0, b"OWN" * 100)
        src.copy(0, dst, PAGE, PAGE, policy=CopyPolicy.HISTORY)
        blob = dst.read(0, 3 * PAGE)
        assert blob[:3] == b"OWN"
        assert blob[PAGE:PAGE + 4] == bytes([10] * 4)      # via parent
        assert blob[2 * PAGE:2 * PAGE + 4] == bytes(4)     # hole: zeros

    def test_write_through_chain_of_three(self, pvm, make):
        a = make("a", fill=1)
        b = make("b")
        c = make("c")
        a.copy(0, b, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        b.copy(0, c, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        c.write(0, b"leafwrite")
        assert a.read(0, 2) == bytes([1, 1])
        assert b.read(0, 2) == bytes([1, 1])
        assert c.read(0, 9) == b"leafwrite"


class TestSplitInteractions:
    def test_split_of_locked_region_keeps_pins(self, pvm, ctx, make):
        cache = make()
        region = ctx.region_create(0x40000, 4 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        region.lock_in_memory()
        upper = region.split(2 * PAGE)
        assert upper.locked
        faults = pvm.bus.stats.get("faults")
        pvm.user_write(ctx, 0x40000 + 3 * PAGE, b"no fault")
        assert pvm.bus.stats.get("faults") == faults

    def test_split_regions_unlock_independently(self, pvm, ctx, make):
        cache = make()
        region = ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        region.lock_in_memory()
        upper = region.split(PAGE)
        upper.unlock()
        assert cache.pages[0].pinned
        assert not cache.pages[PAGE].pinned


class TestMoveConstraints:
    def test_move_of_pinned_page_copies(self, pvm, make):
        src, dst = make("src"), make("dst")
        src.write(0, b"pinned data")
        src.lock_in_memory(0, PAGE)
        frame = src.pages[0].frame
        src.move(0, dst, 0, PAGE)
        assert dst.read(0, 11) == b"pinned data"
        # Pinned frame stayed where it was.
        assert src.pages[0].frame == frame

    def test_move_nonresident_source_pulls_through(self, pvm, make):
        src, dst = make("src"), make("dst")
        src.write(0, b"swapped out")
        src.flush(0, PAGE)
        assert 0 not in src.pages
        src.move(0, dst, 0, PAGE)
        assert dst.read(0, 11) == b"swapped out"


class TestAddressAllocation:
    def test_never_allocates_page_zero(self, pvm, ctx):
        assert ctx.allocate_address(PAGE) >= PAGE

    def test_fills_gaps_between_regions(self, pvm, ctx, make):
        cache = make()
        ctx.region_create(PAGE, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        ctx.region_create(4 * PAGE, PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        address = ctx.allocate_address(2 * PAGE)
        assert address == 2 * PAGE

    def test_skips_too_small_gaps(self, pvm, ctx, make):
        cache = make()
        ctx.region_create(PAGE, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        ctx.region_create(3 * PAGE, PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        address = ctx.allocate_address(2 * PAGE)
        assert address >= 4 * PAGE

    def test_hint_respected(self, pvm, ctx):
        address = ctx.allocate_address(PAGE, start_hint=0x700000)
        assert address >= 0x700000


class TestCopyOnReferenceViaNucleus:
    def test_rgn_init_on_reference(self):
        from repro.nucleus import Nucleus
        from repro.segments import MemoryMapper
        from repro.units import MB
        nucleus = Nucleus(memory_size=4 * MB)
        mapper = MemoryMapper()
        nucleus.register_mapper(mapper)
        cap = mapper.register(b"reference me" + bytes(PAGE))
        actor = nucleus.create_actor()
        nucleus.rgn_init(actor, cap, PAGE, address=0x40000,
                         on_reference=True)
        assert actor.read(0x40000, 12) == b"reference me"
        # COR: the read already materialized a private page.
        cache = actor.mappings[-1].cache
        assert 0 in cache.pages


class TestDoubleDestroy:
    def test_cache_double_destroy_rejected(self, pvm, make):
        cache = make()
        cache.destroy()
        from repro.errors import StaleObject
        with pytest.raises(StaleObject):
            cache.destroy()

    def test_operations_on_destroyed_cache_rejected(self, pvm, make):
        from repro.errors import StaleObject
        cache = make()
        cache.destroy()
        with pytest.raises(StaleObject):
            cache.read(0, 1)
        with pytest.raises(StaleObject):
            cache.write(0, b"x")
