"""The machine-dependent hardware layer: per-space indexing, batched
MMU traffic, and consumer-tracked shootdowns.

These tests drive :class:`~repro.pvm.hw_interface.HardwareLayer`
directly against a counting MMU, pinning three properties:

* space teardown and range invalidation are batched at the MMU (one
  port call, not one per page) and scale with the space's *own*
  mappings, never with the total across spaces;
* virtual-clock charges stay strictly per page — the batching is a
  wall-time optimization, invisible to the cost model;
* consumer tracking (which (cache, offset) a translation *serves*)
  survives remaps without leaking stale entries.
"""

import pytest

from repro.hardware.paged_mmu import PagedMMU
from repro.kernel.clock import CostEvent, VirtualClock
from repro.pvm.hw_interface import HardwareLayer, Prot
from repro.pvm.page import RealPageDescriptor
from repro.units import KB

PAGE = 8 * KB


class CountingMMU(PagedMMU):
    """PagedMMU that tallies every mapping-maintenance entry point."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = {"unmap": 0, "unmap_batch": 0, "protect": 0,
                      "protect_batch": 0, "destroy_space": 0,
                      "del_entry": 0}

    def unmap(self, space, vaddr):
        self.calls["unmap"] += 1
        return super().unmap(space, vaddr)

    def unmap_batch(self, space, vaddrs):
        self.calls["unmap_batch"] += 1
        return super().unmap_batch(space, vaddrs)

    def protect(self, space, vaddr, prot):
        self.calls["protect"] += 1
        super().protect(space, vaddr, prot)

    def protect_batch(self, space, items):
        self.calls["protect_batch"] += 1
        super().protect_batch(space, items)

    def destroy_space(self, space):
        self.calls["destroy_space"] += 1
        super().destroy_space(space)

    def _del_entry(self, space, vpn):
        self.calls["del_entry"] += 1
        return super()._del_entry(space, vpn)


class FakeCache:
    """Just enough cache identity for the hardware layer."""

    def __init__(self, cache_id):
        self.cache_id = cache_id
        self.name = f"cache{cache_id}"


@pytest.fixture
def hw():
    clock = VirtualClock()
    return HardwareLayer(CountingMMU(PAGE), clock)


def make_page(cache, offset, frame):
    return RealPageDescriptor(cache, offset, frame)


class TestDestroySpace:
    def test_work_scales_with_own_mappings_not_total(self, hw):
        """Regression: teardown of one space among many must not scan
        (or unmap) the other spaces' translations."""
        cache = FakeCache(1)
        spaces = []
        for index in range(50):
            space = hw.create_space()
            page = make_page(cache, index * PAGE, index)
            hw.map_page(space, 0x40000, page, Prot.RW)
            spaces.append((space, page))
        victim_space, victim_page = spaces[25]

        before = dict(hw.mmu.calls)
        unmaps_before = hw.clock.count(CostEvent.PAGE_UNMAP)
        hw.destroy_space(victim_space)

        # One port-level space drop; zero per-page unmaps or entry
        # deletions — the other 49 spaces were never touched.
        assert hw.mmu.calls["destroy_space"] == before["destroy_space"] + 1
        assert hw.mmu.calls["unmap"] == before["unmap"]
        assert hw.mmu.calls["unmap_batch"] == before["unmap_batch"]
        assert hw.mmu.calls["del_entry"] == before["del_entry"]
        # The per-page cost accounting is unchanged: one PAGE_UNMAP
        # per translation the space actually held.
        assert hw.clock.count(CostEvent.PAGE_UNMAP) == unmaps_before + 1
        assert not victim_page.mappings
        for space, page in spaces:
            if space == victim_space:
                continue
            assert hw.mapping_of(space, 0x40000) is page

    def test_charges_one_page_unmap_per_own_translation(self, hw):
        cache = FakeCache(1)
        space = hw.create_space()
        for index in range(7):
            page = make_page(cache, index * PAGE, index)
            hw.map_page(space, 0x40000 + index * PAGE, page, Prot.RW)
        hw.destroy_space(space)
        assert hw.clock.count(CostEvent.PAGE_UNMAP) == 7

    def test_empty_space_destroy_is_clean(self, hw):
        space = hw.create_space()
        hw.destroy_space(space)
        assert hw.clock.count(CostEvent.PAGE_UNMAP) == 0
        assert not hw.mmu.space_exists(space)


class TestUnmapRangeCharges:
    def test_per_virtual_page_and_per_resident_page_charges(self, hw):
        """Charge semantics of the batched path: REGION_INVALIDATE_PAGE
        per virtual page in the range, PAGE_UNMAP per translation
        dropped — exactly what the per-page loop charged."""
        cache = FakeCache(1)
        space = hw.create_space()
        resident = (0, 3, 9)                      # 3 of 16 pages mapped
        for index in resident:
            page = make_page(cache, index * PAGE, index)
            hw.map_page(space, 0x40000 + index * PAGE, page, Prot.RW)
        maps = hw.clock.count(CostEvent.PAGE_MAP)

        dropped = hw.unmap_range(space, 0x40000, 16 * PAGE)

        assert dropped == len(resident)
        assert hw.clock.count(CostEvent.REGION_INVALIDATE_PAGE) == 16
        assert hw.clock.count(CostEvent.PAGE_UNMAP) == len(resident)
        assert hw.clock.count(CostEvent.PAGE_MAP) == maps
        # The MMU saw one batch call for the whole range.
        assert hw.mmu.calls["unmap_batch"] == 1
        assert hw.mmu.calls["unmap"] == 0

    def test_fully_unmapped_range_still_charges_invalidation(self, hw):
        space = hw.create_space()
        assert hw.unmap_range(space, 0x40000, 8 * PAGE) == 0
        assert hw.clock.count(CostEvent.REGION_INVALIDATE_PAGE) == 8
        assert hw.clock.count(CostEvent.PAGE_UNMAP) == 0
        # Nothing resident: no MMU batch needed at all.
        assert hw.mmu.calls["unmap_batch"] == 0


class TestConsumerTracking:
    def test_shootdown_served_across_spaces(self, hw):
        """An ancestor frame presented to one (cache, offset) from
        several address spaces: gaining a private version must shoot
        down every serving translation, wherever it lives."""
        ancestor = FakeCache(1)
        child = FakeCache(2)
        page = make_page(ancestor, 0, 0)          # the shared frame
        space_a = hw.create_space()
        space_b = hw.create_space()
        hw.map_page(space_a, 0x40000, page, Prot.READ,
                    consumer=(child.cache_id, 0))
        hw.map_page(space_b, 0x80000, page, Prot.READ,
                    consumer=(child.cache_id, 0))

        served = hw.shootdown_served(child, 0)

        assert served == 2
        assert hw.mapping_of(space_a, 0x40000) is None
        assert hw.mapping_of(space_b, 0x80000) is None
        assert not page.mappings
        assert hw.clock.count(CostEvent.PAGE_UNMAP) == 2
        # Grouped per space: two spaces, two batch calls, no singles.
        assert hw.mmu.calls["unmap_batch"] == 2
        assert hw.mmu.calls["unmap"] == 0

    def test_shootdown_served_ignores_other_offsets(self, hw):
        child = FakeCache(2)
        page = make_page(FakeCache(1), 0, 0)
        space = hw.create_space()
        hw.map_page(space, 0x40000, page, Prot.READ,
                    consumer=(child.cache_id, 0))
        assert hw.shootdown_served(child, PAGE) == 0
        assert hw.mapping_of(space, 0x40000) is page

    def test_remap_clears_stale_consumer(self, hw):
        """Remapping a virtual page to serve a different (cache,
        offset) must unregister the old consumer: a later shootdown of
        the old identity must not kill the new translation."""
        old = FakeCache(1)
        new = FakeCache(2)
        space = hw.create_space()
        old_page = make_page(old, 0, 0)
        new_page = make_page(new, 0, 1)
        hw.map_page(space, 0x40000, old_page, Prot.READ,
                    consumer=(old.cache_id, 0))
        hw.map_page(space, 0x40000, new_page, Prot.RW,
                    consumer=(new.cache_id, 0))

        assert hw.shootdown_served(old, 0) == 0
        assert hw.mapping_of(space, 0x40000) is new_page
        assert (space, 0x40000) not in old_page.mappings
        assert hw.shootdown_served(new, 0) == 1
        assert hw.mapping_of(space, 0x40000) is None

    def test_unmap_page_unregisters_consumer(self, hw):
        child = FakeCache(2)
        page = make_page(FakeCache(1), 0, 0)
        space = hw.create_space()
        hw.map_page(space, 0x40000, page, Prot.READ,
                    consumer=(child.cache_id, 0))
        assert hw.unmap_page(space, 0x40000)
        assert hw.shootdown_served(child, 0) == 0
        assert not hw._consumers
        assert not hw._consumer_of


class TestPageCentricBatches:
    def test_shootdown_batches_per_space(self, hw):
        cache = FakeCache(1)
        page = make_page(cache, 0, 0)
        space_a = hw.create_space()
        space_b = hw.create_space()
        hw.map_page(space_a, 0x40000, page, Prot.RW)
        hw.map_page(space_a, 0x42000, page, Prot.RW)
        hw.map_page(space_b, 0x40000, page, Prot.RW)

        assert hw.shootdown(page) == 3
        assert not page.mappings
        assert hw.clock.count(CostEvent.PAGE_UNMAP) == 3
        assert hw.mmu.calls["unmap_batch"] == 2   # one per space
        assert hw.mmu.calls["unmap"] == 0

    def test_downgrade_page_batches_and_charges_once(self, hw):
        cache = FakeCache(1)
        page = make_page(cache, 0, 0)
        space_a = hw.create_space()
        space_b = hw.create_space()
        hw.map_page(space_a, 0x40000, page, Prot.RW)
        hw.map_page(space_b, 0x40000, page, Prot.RW)

        hw.downgrade_page(page)

        for space in (space_a, space_b):
            mapping = hw.mmu.lookup(space, 0x40000)
            assert mapping.prot == Prot.READ
        # Per-page accounting: one PAGE_PROTECT for the whole page.
        assert hw.clock.count(CostEvent.PAGE_PROTECT) == 1
        assert hw.mmu.calls["protect_batch"] == 2
        assert hw.mmu.calls["protect"] == 0
