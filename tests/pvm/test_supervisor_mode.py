"""User/system protection (the paper's "user/system" region attribute)."""

import pytest

from repro.errors import AccessViolation
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.hardware.mmu import Prot
from repro.units import KB

PAGE = 8 * KB

SYSTEM_RW = Protection.RW | Protection.SYSTEM


@pytest.fixture
def kernel_region(pvm, ctx, make_cache):
    cache = make_cache("kernel")
    region = ctx.region_create(0x40000, 2 * PAGE, protection=SYSTEM_RW,
                               cache=cache, offset=0)
    return cache, region


class TestSupervisorRegions:
    def test_user_access_rejected_unmapped(self, pvm, ctx, kernel_region):
        with pytest.raises(AccessViolation, match="system region"):
            pvm.user_read(ctx, 0x40000, 1)

    def test_supervisor_access_allowed(self, pvm, ctx, kernel_region):
        pvm.user_write(ctx, 0x40000, b"kernel data", supervisor=True)
        assert pvm.user_read(ctx, 0x40000, 11, supervisor=True) == \
            b"kernel data"

    def test_user_access_rejected_even_when_mapped(self, pvm, ctx,
                                                   kernel_region):
        """The SYSTEM bit lives in the PTE: a resident, mapped page
        still traps user mode (no fault-handler bypass)."""
        pvm.user_write(ctx, 0x40000, b"resident", supervisor=True)
        mapping = pvm.mmu.lookup(ctx.space, 0x40000)
        assert mapping.prot & Prot.SYSTEM
        with pytest.raises(AccessViolation):
            pvm.user_read(ctx, 0x40000, 1)
        with pytest.raises(AccessViolation):
            pvm.user_write(ctx, 0x40000, b"x")

    def test_user_regions_unaffected(self, pvm, ctx, make_cache):
        cache = make_cache()
        ctx.region_create(0x90000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        pvm.user_write(ctx, 0x90000, b"user ok")
        assert pvm.user_read(ctx, 0x90000, 7) == b"user ok"

    def test_mixed_space(self, pvm, ctx, make_cache):
        """Kernel and user regions side by side in one context — the
        classic kernel-mapped-high layout."""
        kernel = make_cache("k")
        user = make_cache("u")
        ctx.region_create(0x7000000, PAGE, protection=SYSTEM_RW, cache=kernel,
                          offset=0)
        ctx.region_create(0x10000, PAGE, protection=Protection.RW, cache=user,
                          offset=0)
        pvm.user_write(ctx, 0x7000000, b"secrets", supervisor=True)
        pvm.user_write(ctx, 0x10000, b"app")
        with pytest.raises(AccessViolation):
            pvm.user_read(ctx, 0x7000000, 7)
        assert pvm.user_read(ctx, 0x7000000, 7, supervisor=True) == \
            b"secrets"

    def test_demote_region_to_user(self, pvm, ctx, kernel_region):
        cache, region = kernel_region
        pvm.user_write(ctx, 0x40000, b"was kernel", supervisor=True)
        region.set_protection(Protection.RW)        # drop SYSTEM
        assert pvm.user_read(ctx, 0x40000, 10) == b"was kernel"

    def test_cow_works_in_system_regions(self, pvm, ctx, make_cache):
        from repro.gmi.interface import CopyPolicy
        src = make_cache("ksrc")
        src.write(0, b"kernel image")
        dst = make_cache("kdst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        ctx.region_create(0x40000, PAGE, protection=SYSTEM_RW, cache=dst,
                          offset=0)
        pvm.user_write(ctx, 0x40000, b"patched!", supervisor=True)
        assert src.read(0, 12) == b"kernel image"
        assert pvm.user_read(ctx, 0x40000, 8, supervisor=True) == \
            b"patched!"
