"""Unit tests for contexts and regions (Table 2 semantics)."""

import pytest

from repro.errors import InvalidOperation, StaleObject
from repro.gmi.types import Protection
from repro.units import KB

PAGE = 8 * KB


class TestContext:
    def test_create_and_destroy(self, pvm):
        ctx = pvm.context_create("a")
        assert ctx in pvm.contexts()
        ctx.destroy()
        assert ctx not in pvm.contexts()
        with pytest.raises(StaleObject):
            ctx.get_region_list()

    def test_switch_sets_current(self, pvm):
        a = pvm.context_create("a")
        b = pvm.context_create("b")
        b.switch()
        assert pvm.current_context is b

    def test_destroy_unmaps_regions(self, pvm, make_cache):
        ctx = pvm.context_create()
        cache = make_cache()
        region = ctx.region_create(0x10000, 2 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        pvm.user_write(ctx, 0x10000, b"x")
        ctx.destroy()
        assert region.destroyed
        # The cache survives context destruction (segment caching).
        assert not cache.destroyed


class TestRegionCreate:
    def test_region_list_sorted(self, pvm, ctx, make_cache):
        cache = make_cache()
        r2 = ctx.region_create(0x20000, PAGE, protection=Protection.RW,
                               cache=cache, offset=0)
        r1 = ctx.region_create(0x10000, PAGE, protection=Protection.RW,
                               cache=cache, offset=PAGE)
        assert ctx.get_region_list() == [r1, r2]

    def test_unaligned_address_rejected(self, pvm, ctx, make_cache):
        with pytest.raises(InvalidOperation):
            ctx.region_create(0x10001, PAGE, protection=Protection.RW,
                              cache=make_cache(), offset=0)

    def test_unaligned_size_rejected(self, pvm, ctx, make_cache):
        with pytest.raises(InvalidOperation):
            ctx.region_create(0x10000, 100, protection=Protection.RW,
                              cache=make_cache(), offset=0)

    def test_unaligned_offset_rejected(self, pvm, ctx, make_cache):
        with pytest.raises(InvalidOperation):
            ctx.region_create(0x10000, PAGE, protection=Protection.RW,
                              cache=make_cache(), offset=5)

    def test_overlap_rejected(self, pvm, ctx, make_cache):
        cache = make_cache()
        ctx.region_create(0x10000, 4 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        with pytest.raises(InvalidOperation):
            ctx.region_create(0x10000 + 2 * PAGE, PAGE,
                              protection=Protection.RW, cache=cache, offset=0)

    def test_mapping_destroyed_cache_rejected(self, pvm, ctx, make_cache):
        cache = make_cache()
        cache.destroy()
        with pytest.raises(StaleObject):
            ctx.region_create(0x10000, PAGE, protection=Protection.RW,
                              cache=cache, offset=0)

    def test_same_cache_twice(self, pvm, ctx, make_cache):
        """Two regions may map the same cache (section 3.2)."""
        cache = make_cache()
        ctx.region_create(0x10000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        ctx.region_create(0x20000, PAGE, protection=Protection.READ,
                          cache=cache, offset=0)
        pvm.user_write(ctx, 0x10000, b"shared")
        assert pvm.user_read(ctx, 0x20000, 6) == b"shared"


class TestFindRegion:
    def test_find_hits_and_misses(self, pvm, ctx, make_cache):
        cache = make_cache()
        region = ctx.region_create(0x10000, 2 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        assert ctx.regions_overlapping(0x10000, 1) == [region]
        assert ctx.regions_overlapping(0x10000 + 2 * PAGE - 1, 1) == [region]
        assert ctx.regions_overlapping(0x10000 + 2 * PAGE, 1) == []
        assert ctx.regions_overlapping(0xFFFF, 1) == []

    def test_allocate_address_skips_regions(self, pvm, ctx, make_cache):
        cache = make_cache()
        ctx.region_create(PAGE, 2 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        addr = ctx.allocate_address(4 * PAGE)
        assert addr >= 3 * PAGE
        ctx.region_create(addr, 4 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)


class TestSplit:
    def test_split_preserves_coverage(self, pvm, ctx, make_cache):
        cache = make_cache()
        region = ctx.region_create(0x10000, 4 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        pvm.user_write(ctx, 0x10000 + 3 * PAGE, b"upper")
        upper = region.split(2 * PAGE)
        assert region.size == 2 * PAGE
        assert upper.address == 0x10000 + 2 * PAGE
        assert upper.offset == 2 * PAGE
        # Data is still reachable through the new region.
        assert pvm.user_read(ctx, 0x10000 + 3 * PAGE, 5) == b"upper"

    def test_split_then_different_protections(self, pvm, ctx, make_cache):
        """The paper's rationale for split: protecting parts differently."""
        from repro.errors import AccessViolation
        cache = make_cache()
        region = ctx.region_create(0x10000, 2 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        upper = region.split(PAGE)
        upper.set_protection(Protection.READ)
        pvm.user_write(ctx, 0x10000, b"ok")
        with pytest.raises(AccessViolation):
            pvm.user_write(ctx, 0x10000 + PAGE, b"no")

    def test_split_bad_offsets(self, pvm, ctx, make_cache):
        cache = make_cache()
        region = ctx.region_create(0x10000, 2 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        with pytest.raises(InvalidOperation):
            region.split(0)
        with pytest.raises(InvalidOperation):
            region.split(2 * PAGE)
        with pytest.raises(InvalidOperation):
            region.split(100)

    def test_no_spontaneous_split(self, pvm, ctx, make_cache):
        """Faulting and protection never change the region list."""
        cache = make_cache()
        ctx.region_create(0x10000, 8 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        pvm.user_write(ctx, 0x10000 + 5 * PAGE, b"data")
        assert len(ctx.get_region_list()) == 1


class TestStatus:
    def test_status_fields(self, pvm, ctx, make_cache):
        cache = make_cache()
        region = ctx.region_create(0x10000, 4 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=2 * PAGE)
        pvm.user_write(ctx, 0x10000, b"x")
        status = region.status()
        assert status.address == 0x10000
        assert status.size == 4 * PAGE
        assert status.protection == Protection.RW
        assert status.cache is cache
        assert status.offset == 2 * PAGE
        assert status.resident_pages == 1
        assert not status.locked

    def test_window_into_segment(self, pvm, ctx, make_cache):
        """A region may be a window into part of a segment."""
        cache = make_cache()
        cache.write(3 * PAGE, b"windowed")
        region = ctx.region_create(0x10000, PAGE, protection=Protection.RW,
                                   cache=cache, offset=3 * PAGE)
        assert pvm.user_read(ctx, 0x10000, 8) == b"windowed"


class TestDestroy:
    def test_destroy_unmaps(self, pvm, ctx, make_cache):
        from repro.errors import SegmentationFault
        cache = make_cache()
        region = ctx.region_create(0x10000, PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        pvm.user_write(ctx, 0x10000, b"gone")
        region.destroy()
        with pytest.raises(SegmentationFault):
            pvm.user_read(ctx, 0x10000, 4)

    def test_destroy_keeps_cache_data(self, pvm, ctx, make_cache):
        cache = make_cache()
        region = ctx.region_create(0x10000, PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        pvm.user_write(ctx, 0x10000, b"kept")
        region.destroy()
        assert cache.read(0, 4) == b"kept"

    def test_double_destroy_rejected(self, pvm, ctx, make_cache):
        region = ctx.region_create(0x10000, PAGE, protection=Protection.RW,
                                   cache=make_cache(), offset=0)
        region.destroy()
        with pytest.raises(StaleObject):
            region.destroy()


class TestProtection:
    def test_read_only_region_blocks_write(self, pvm, ctx, make_cache):
        from repro.errors import AccessViolation
        cache = make_cache()
        cache.write(0, b"ro")
        ctx.region_create(0x10000, PAGE, protection=Protection.READ,
                          cache=cache, offset=0)
        assert pvm.user_read(ctx, 0x10000, 2) == b"ro"
        with pytest.raises(AccessViolation):
            pvm.user_write(ctx, 0x10000, b"X")

    def test_upgrade_protection(self, pvm, ctx, make_cache):
        cache = make_cache()
        region = ctx.region_create(0x10000, PAGE, protection=Protection.READ,
                                   cache=cache, offset=0)
        pvm.user_read(ctx, 0x10000, 1)
        region.set_protection(Protection.RW)
        pvm.user_write(ctx, 0x10000, b"now ok")
        assert pvm.user_read(ctx, 0x10000, 6) == b"now ok"

    def test_downgrade_applies_to_resident_pages(self, pvm, ctx, make_cache):
        from repro.errors import AccessViolation
        cache = make_cache()
        region = ctx.region_create(0x10000, PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        pvm.user_write(ctx, 0x10000, b"data")
        region.set_protection(Protection.READ)
        with pytest.raises(AccessViolation):
            pvm.user_write(ctx, 0x10000, b"X")


class TestLockInMemory:
    def test_lock_pins_pages(self, pvm, ctx, make_cache):
        cache = make_cache()
        region = ctx.region_create(0x10000, 2 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        region.lock_in_memory()
        assert region.status().resident_pages == 2
        for offset in (0, PAGE):
            assert cache.pages[offset].pinned

    def test_locked_region_never_faults(self, pvm, ctx, make_cache):
        """After lockInMemory, access proceeds without faults."""
        cache = make_cache()
        region = ctx.region_create(0x10000, 2 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        region.lock_in_memory()
        faults_before = pvm.bus.stats.get("faults")
        pvm.user_write(ctx, 0x10000, b"realtime")
        pvm.user_read(ctx, 0x10000 + PAGE, 16)
        assert pvm.bus.stats.get("faults") == faults_before

    def test_unlock_unpins(self, pvm, ctx, make_cache):
        cache = make_cache()
        region = ctx.region_create(0x10000, PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        region.lock_in_memory()
        region.unlock()
        assert not cache.pages[0].pinned
        assert not region.locked
