"""Per-virtual-page copy-on-write (section 4.3)."""

import pytest

from repro.gmi.interface import CopyPolicy
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.kernel.clock import CostEvent
from repro.pvm.page import CowStub
from repro.units import KB

PAGE = 8 * KB


@pytest.fixture
def make(pvm):
    def factory(name=None, fill=None, pages=4):
        cache = pvm.cache_create(ZeroFillProvider(), name=name)
        if fill is not None:
            for page in range(pages):
                cache.write(page * PAGE, bytes([fill + page]) * PAGE)
        return cache
    return factory


def pp_copy(src, dst, pages=2, src_off=0, dst_off=0):
    src.copy(src_off, dst, dst_off, pages * PAGE, policy=CopyPolicy.PER_PAGE)


class TestStubPlacement:
    def test_stubs_inserted_for_destination(self, pvm, make):
        src = make("src", fill=1)
        dst = make("dst")
        pp_copy(src, dst)
        for offset in (0, PAGE):
            entry = pvm.global_map.lookup(dst, offset)
            assert isinstance(entry, CowStub)
        assert pvm.clock.count(CostEvent.COW_STUB_INSERT) == 2

    def test_stub_points_to_resident_page(self, pvm, make):
        src = make("src", fill=1)
        dst = make("dst")
        pp_copy(src, dst)
        stub = pvm.global_map.lookup(dst, 0)
        assert stub.src_page is src.pages[0]
        assert stub in src.pages[0].cow_stubs

    def test_stub_for_nonresident_source_carries_cache_offset(self, pvm,
                                                              make):
        src = make("src", fill=1)
        src.flush(0, 4 * PAGE)                  # evict everything
        dst = make("dst")
        pp_copy(src, dst)
        stub = pvm.global_map.lookup(dst, 0)
        assert stub.src_page is None
        assert stub.src_cache is src and stub.src_offset == 0

    def test_source_pages_protected(self, pvm, make):
        from repro.hardware.mmu import Prot
        src = make("src", fill=1)
        ctx = pvm.context_create()
        ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                          cache=src, offset=0)
        pvm.user_write(ctx, 0x40000, b"touch")
        dst = make("dst")
        pp_copy(src, dst)
        mapping = pvm.mmu.lookup(ctx.space, 0x40000)
        assert not (mapping.prot & Prot.WRITE)


class TestReads:
    def test_read_through_stub_shares_source_page(self, pvm, make):
        """The source page is accessible for reads through any cache to
        which it was copied (4.3)."""
        src = make("src", fill=5)
        dst = make("dst")
        pp_copy(src, dst)
        assert dst.read(0, 3) == bytes([5] * 3)
        assert 0 not in dst.pages          # still deferred

    def test_mapped_read_through_stub(self, pvm, make):
        src = make("src", fill=5)
        dst = make("dst")
        pp_copy(src, dst)
        ctx = pvm.context_create()
        ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                          cache=dst, offset=0)
        assert pvm.user_read(ctx, 0x40000, 2) == bytes([5, 5])
        # Read mapped the source frame read-only; the stub remains.
        assert isinstance(pvm.global_map.lookup(dst, 0), CowStub)


class TestWriteResolution:
    def test_write_violation_allocates_copy(self, pvm, make):
        src = make("src", fill=5)
        dst = make("dst")
        pp_copy(src, dst)
        dst.write(0, b"resolved")
        assert dst.read(0, 8) == b"resolved"
        assert src.read(0, 8) == bytes([5] * 8)
        assert not isinstance(pvm.global_map.lookup(dst, 0), CowStub)
        assert pvm.clock.count(CostEvent.COW_STUB_RESOLVE) == 1

    def test_mapped_write_resolves_stub(self, pvm, make):
        src = make("src", fill=5)
        dst = make("dst")
        pp_copy(src, dst)
        ctx = pvm.context_create()
        ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                          cache=dst, offset=0)
        pvm.user_write(ctx, 0x40000, b"mapped write")
        assert src.read(0, 4) == bytes([5] * 4)
        assert pvm.user_read(ctx, 0x40000, 12) == b"mapped write"

    def test_source_write_breaks_stubs_first(self, pvm, make):
        """Writing the source materializes dependent copies so they
        keep the copy-time value."""
        src = make("src", fill=5)
        dst = make("dst")
        pp_copy(src, dst)
        src.write(0, b"source moved on")
        assert dst.read(0, 3) == bytes([5] * 3)
        assert src.read(0, 15) == b"source moved on"
        assert 0 in dst.pages

    def test_multiple_destinations_one_source_page(self, pvm, make):
        src = make("src", fill=9)
        dsts = [make(f"d{i}") for i in range(3)]
        for dst in dsts:
            pp_copy(src, dst, pages=1)
        assert len(src.pages[0].cow_stubs) == 3
        src.write(0, b"boom")
        for dst in dsts:
            assert dst.read(0, 2) == bytes([9, 9])


class TestEvictionInteraction:
    def test_source_eviction_retargets_stubs(self, pvm, make):
        src = make("src", fill=3)
        dst = make("dst")
        pp_copy(src, dst)
        src.flush(0, PAGE)                  # push out + drop page 0
        stub = pvm.global_map.lookup(dst, 0)
        assert stub.src_page is None
        assert stub.src_cache is src
        # Read still resolves (pulls the saved page back).
        assert dst.read(0, 2) == bytes([3, 3])

    def test_write_after_source_eviction(self, pvm, make):
        src = make("src", fill=3)
        dst = make("dst")
        pp_copy(src, dst)
        src.flush(0, 2 * PAGE)
        dst.write(PAGE, b"after eviction")
        assert dst.read(PAGE, 14) == b"after eviction"
        assert src.read(PAGE, 2) == bytes([4, 4])

    def test_source_destroy_materializes_stubs(self, pvm, make):
        src = make("src", fill=3)
        dst = make("dst")
        pp_copy(src, dst)
        src.destroy()
        assert src.destroyed                # no history children: real destroy
        assert dst.read(0, 2) == bytes([3, 3])
        assert 0 in dst.pages


class TestIpcSizedTransfers:
    def test_auto_uses_per_page_for_small_copies(self, pvm, make):
        src = make("src", fill=1)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.AUTO)
        assert isinstance(pvm.global_map.lookup(dst, 0), CowStub)

    def test_auto_uses_history_for_large_copies(self, pvm, make):
        src = pvm.cache_create(ZeroFillProvider(), name="big")
        src.write(0, b"large")
        dst = pvm.cache_create(ZeroFillProvider(), name="dstbig")
        src.copy(0, dst, 0, 16 * PAGE, policy=CopyPolicy.AUTO)
        assert len(dst.parents) == 1
        assert pvm.global_map.lookup(dst, 0) is None

    def test_64k_message_roundtrip(self, pvm, make):
        src = make("msg")
        payload = bytes(range(256)) * 256          # 64 KB
        src.write(0, payload)
        dst = make("slot")
        src.copy(0, dst, 0, 64 * KB, policy=CopyPolicy.PER_PAGE)
        assert dst.read(0, 64 * KB) == payload
