"""Synchronization page stubs with asynchronous mappers (4.1.2).

"Before calling pullIn, the PVM places a synchronization page stub in
the global map for that page.  This will cause any future access to
the virtual page to sleep, as long as it is in transit."
"""

import threading
import time

import pytest

from repro.gmi.types import Protection
from repro.gmi.upcalls import SegmentProvider
from repro.kernel.sync import ThreadedSync
from repro.pvm import PagedVirtualMemory
from repro.pvm.page import SyncStub
from repro.units import KB, MB

PAGE = 8 * KB


class SlowAsyncProvider(SegmentProvider):
    """Serves pullIns from a worker thread after a delay."""

    def __init__(self, delay=0.05):
        self.delay = delay
        self.concurrent_pulls = 0
        self.total_pulls = 0
        self.threads = []

    def pull_in(self, cache, offset, size, access_mode):
        self.total_pulls += 1

        def worker():
            time.sleep(self.delay)
            cache.fill_up(offset, b"\x77" * size)

        thread = threading.Thread(target=worker)
        self.threads.append(thread)
        thread.start()

    def push_out(self, cache, offset, size):
        cache.copy_back(offset, size)

    def segment_create(self, cache):
        return "slow"

    def join(self):
        for thread in self.threads:
            thread.join(timeout=5)


@pytest.fixture
def threaded_pvm():
    return PagedVirtualMemory(memory_size=1 * MB, sync=ThreadedSync())


class TestAsyncPullIn:
    def test_faulting_thread_sleeps_until_fill(self, threaded_pvm):
        pvm = threaded_pvm
        provider = SlowAsyncProvider()
        cache = pvm.cache_create(provider)
        ctx = pvm.context_create()
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        start = time.monotonic()
        data = pvm.user_read(ctx, 0x40000, 4)
        elapsed = time.monotonic() - start
        provider.join()
        assert data == b"\x77" * 4
        assert elapsed >= provider.delay * 0.5

    def test_concurrent_faulters_share_one_pull(self, threaded_pvm):
        """Two threads faulting the same page: one pullIn, both wake."""
        pvm = threaded_pvm
        provider = SlowAsyncProvider(delay=0.1)
        cache = pvm.cache_create(provider)
        ctx = pvm.context_create()
        ctx.region_create(0x40000, PAGE, protection=Protection.RW, cache=cache,
                          offset=0)
        results = []

        def reader():
            results.append(pvm.user_read(ctx, 0x40000, 2))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        provider.join()
        assert results == [b"\x77\x77"] * 4
        assert provider.total_pulls == 1
        assert cache.statistics.stub_waits >= 1

    def test_explicit_read_also_sleeps_on_stub(self, threaded_pvm):
        pvm = threaded_pvm
        provider = SlowAsyncProvider()
        cache = pvm.cache_create(provider)
        data = cache.read(0, 8)
        provider.join()
        assert data == b"\x77" * 8

    def test_stub_replaced_by_page_descriptor(self, threaded_pvm):
        pvm = threaded_pvm
        provider = SlowAsyncProvider(delay=0.02)
        cache = pvm.cache_create(provider)
        cache.read(0, 1)
        provider.join()
        entry = pvm.global_map.lookup(cache, 0)
        assert not isinstance(entry, SyncStub)
        assert entry is cache.pages[0]
