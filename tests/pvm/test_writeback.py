"""The write-back daemon: aging, batching, eviction interplay."""

import pytest

from repro.gmi.upcalls import ZeroFillProvider
from repro.kernel.clock import CostEvent
from repro.pvm import PagedVirtualMemory
from repro.cache.writeback import WritebackDaemon
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def rig():
    vm = PagedVirtualMemory(memory_size=2 * MB)
    daemon = WritebackDaemon(vm, age_threshold=2, batch_limit=4)
    cache = vm.cache_create(ZeroFillProvider())
    return vm, daemon, cache


class TestAging:
    def test_young_dirty_pages_left_alone(self, rig):
        vm, daemon, cache = rig
        cache.write(0, b"fresh")
        assert daemon.tick() == 0              # age 1 < threshold 2
        assert cache.pages[0].dirty

    def test_old_dirty_pages_cleaned(self, rig):
        vm, daemon, cache = rig
        cache.write(0, b"aging")
        daemon.tick()
        assert daemon.tick() == 1
        assert not cache.pages[0].dirty
        # The data is recoverable from the provider now.
        cache.invalidate(0, PAGE)
        assert cache.read(0, 5) == b"aging"

    def test_rewrite_does_not_reset_age_but_stays_correct(self, rig):
        vm, daemon, cache = rig
        cache.write(0, b"v1")
        daemon.tick()
        cache.write(0, b"v2")
        daemon.tick()                          # cleaned with v2
        cache.invalidate(0, PAGE)
        assert cache.read(0, 2) == b"v2"

    def test_clean_pages_not_tracked(self, rig):
        vm, daemon, cache = rig
        cache.write(0, b"x")
        daemon.tick()
        daemon.tick()
        daemon.tick()
        assert daemon.dirty_tracked == 0


class TestBatching:
    def test_batch_limit_respected(self, rig):
        vm, daemon, cache = rig
        for index in range(10):
            cache.write(index * PAGE, b"d")
        daemon.tick()
        cleaned = daemon.tick()
        assert cleaned == 4                    # batch_limit
        assert daemon.tick() == 4
        assert daemon.tick() == 2

    def test_counters(self, rig):
        vm, daemon, cache = rig
        for index in range(3):
            cache.write(index * PAGE, b"d")
        daemon.tick()
        daemon.tick()
        assert daemon.pages_cleaned == 3
        assert daemon.ticks == 2


class TestEvictionInterplay:
    def test_cleaned_pages_evict_without_pushout(self):
        """The point of the daemon: eviction of clean pages is free of
        synchronous write-back."""
        vm = PagedVirtualMemory(memory_size=8 * PAGE)
        daemon = WritebackDaemon(vm, age_threshold=1, batch_limit=64)
        cache = vm.cache_create(ZeroFillProvider())
        for index in range(8):
            cache.write(index * PAGE, bytes([index + 1]))
        daemon.tick()                          # everything cleaned
        pushes_before = vm.clock.count(CostEvent.PUSH_OUT)
        other = vm.cache_create(ZeroFillProvider())
        for index in range(4):
            other.write(index * PAGE, b"pressure")
        # The evictions triggered no further pushOuts for `cache`.
        evict_pushes = vm.clock.count(CostEvent.PUSH_OUT) - pushes_before
        assert evict_pushes == 0
        for index in range(8):
            assert cache.read(index * PAGE, 1) == bytes([index + 1])

    def test_without_daemon_evictions_pay_pushouts(self):
        vm = PagedVirtualMemory(memory_size=8 * PAGE)
        cache = vm.cache_create(ZeroFillProvider())
        for index in range(8):
            cache.write(index * PAGE, bytes([index + 1]))
        pushes_before = vm.clock.count(CostEvent.PUSH_OUT)
        other = vm.cache_create(ZeroFillProvider())
        for index in range(4):
            other.write(index * PAGE, b"pressure")
        assert vm.clock.count(CostEvent.PUSH_OUT) - pushes_before > 0
