"""History-object behaviour beyond the Figure 3 walkthroughs:
copy-on-reference, copies into existing segments (4.2.4), deletion
semantics (4.2.2), windowed copies and the collapse GC."""

import pytest

from repro.errors import InvalidOperation
from repro.gmi.interface import CopyPolicy
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.kernel.clock import CostEvent
from repro.units import KB

PAGE = 8 * KB


@pytest.fixture
def make(pvm):
    def factory(name=None, fill=None, pages=4):
        cache = pvm.cache_create(ZeroFillProvider(), name=name)
        if fill is not None:
            for page in range(pages):
                cache.write(page * PAGE, bytes([fill + page]) * PAGE)
        return cache
    return factory


class TestCopyOnReference:
    def test_read_materializes_private_copy(self, pvm, make):
        src = make("src", fill=10)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY,
                 on_reference=True)
        assert dst.read(0, 4) == bytes([10] * 4)
        # Unlike COW, the read allocated a private frame in dst.
        assert 0 in dst.pages
        assert dst.pages[0].frame != src.pages[0].frame

    def test_mapped_read_materializes(self, pvm, make):
        src = make("src", fill=20)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY,
                 on_reference=True)
        ctx = pvm.context_create()
        ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                          cache=dst, offset=0)
        assert pvm.user_read(ctx, 0x40000, 2) == bytes([20, 20])
        assert 0 in dst.pages

    def test_cow_read_shares_instead(self, pvm, make):
        src = make("src", fill=30)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        assert dst.read(0, 1) == bytes([30])
        assert 0 not in dst.pages

    def test_source_write_still_preserved(self, pvm, make):
        src = make("src", fill=40)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY,
                 on_reference=True)
        src.write(0, b"changed")
        assert dst.read(0, 2) == bytes([40, 40])


class TestCopyIntoExisting:
    def test_overwrites_existing_data(self, pvm, make):
        src = make("src", fill=1)
        dst = make("dst", fill=100)
        src.copy(0, dst, PAGE, 2 * PAGE, policy=CopyPolicy.HISTORY)
        # dst page 0 untouched; pages 1-2 now read from src.
        assert dst.read(0, 2) == bytes([100, 100])
        assert dst.read(PAGE, 2) == bytes([1, 1])
        assert dst.read(2 * PAGE, 2) == bytes([2, 2])
        assert dst.read(3 * PAGE, 2) == bytes([103, 103])

    def test_fragments_with_different_parents(self, pvm, make):
        """4.2.4: individual fragments may have different parents."""
        a = make("a", fill=1)
        b = make("b", fill=50)
        dst = make("dst")
        a.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        b.copy(0, dst, PAGE, PAGE, policy=CopyPolicy.HISTORY)
        assert len(dst.parents) == 2
        assert dst.read(0, 1) == bytes([1])
        assert dst.read(PAGE, 1) == bytes([50])

    def test_copy_replaces_earlier_copy_fragment(self, pvm, make):
        a = make("a", fill=1)
        b = make("b", fill=60)
        dst = make("dst")
        a.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        b.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        assert dst.read(0, 1) == bytes([60])
        assert dst.read(PAGE, 1) == bytes([2])

    def test_partial_overlap_splits_fragment(self, pvm, make):
        a = make("a", fill=1)
        b = make("b", fill=70)
        dst = make("dst")
        a.copy(0, dst, 0, 4 * PAGE, policy=CopyPolicy.HISTORY)
        b.copy(0, dst, PAGE, 2 * PAGE, policy=CopyPolicy.HISTORY)
        assert dst.read(0, 1) == bytes([1])         # still from a
        assert dst.read(PAGE, 1) == bytes([70])     # from b
        assert dst.read(2 * PAGE, 1) == bytes([71])
        assert dst.read(3 * PAGE, 1) == bytes([4])  # from a, shifted payload

    def test_overwritten_destination_owes_history_its_preimage(self, pvm,
                                                               make):
        """If dst was itself a copy source, its history descendant must
        get the pre-copy values before the new copy lands."""
        src = make("src", fill=1)
        dst = make("dst", fill=200, pages=2)
        child = make("child")
        dst.copy(0, child, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        # child still sees dst's pre-copy content.
        assert child.read(0, 2) == bytes([200, 200])
        assert child.read(PAGE, 2) == bytes([201, 201])
        # dst itself now reads from src.
        assert dst.read(0, 2) == bytes([1, 1])


class TestWindowedCopy:
    def test_copy_with_offset_shift(self, pvm, make):
        src = make("src", fill=1)
        dst = make("dst")
        src.copy(2 * PAGE, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        assert dst.read(0, 1) == bytes([3])
        assert dst.read(PAGE, 1) == bytes([4])

    def test_write_in_shifted_window_preserves(self, pvm, make):
        src = make("src", fill=1)
        dst = make("dst")
        src.copy(2 * PAGE, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        src.write(2 * PAGE, b"overwritten")
        assert dst.read(0, 1) == bytes([3])


class TestDeletionSemantics:
    def test_copy_deleted_first_simply_discards(self, pvm, make):
        """The normal Unix case: the child (copy) exits first."""
        src = make("src", fill=1)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        dst.destroy()
        assert dst.destroyed
        assert not src.guards            # guards to the dead history dropped
        src.write(0, b"free again")      # no pre-image push needed
        assert len(src.children) == 0

    def test_source_deleted_first_keeps_data(self, pvm, make):
        """Parent exits while child continues: remaining unmodified
        source data is kept until the copy is deleted (4.2.2)."""
        src = make("src", fill=7)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        src.destroy()
        assert src.dead and not src.destroyed
        assert dst.read(0, 2) == bytes([7, 7])
        dst.destroy()
        # Now the dead source is reaped too.
        assert src.destroyed

    def test_dead_chain_cascades(self, pvm, make):
        src = make("src", fill=1)
        mid = make("mid")
        leaf = make("leaf")
        src.copy(0, mid, 0, PAGE, policy=CopyPolicy.HISTORY)
        mid.copy(0, leaf, 0, PAGE, policy=CopyPolicy.HISTORY)
        src.destroy()
        mid.destroy()
        assert src.dead and mid.dead
        assert leaf.read(0, 1) == bytes([1])
        leaf.destroy()
        assert mid.destroyed and src.destroyed

    def test_working_object_reaped_with_last_copy(self, pvm, make):
        src = make("src", fill=1)
        cpy1 = make("cpy1")
        cpy2 = make("cpy2")
        src.copy(0, cpy1, 0, PAGE, policy=CopyPolicy.HISTORY)
        src.copy(0, cpy2, 0, PAGE, policy=CopyPolicy.HISTORY)
        working = src.history
        cpy1.destroy()
        assert not working.destroyed
        cpy2.destroy()
        # Working object loses both children; it is dead (it was
        # created unilaterally and its source still guards into it) —
        # the guards are dropped when it is released.
        assert working.children == set()


class TestCyclePrevention:
    def test_copy_back_to_ancestor_degrades_to_eager(self, pvm, make):
        src = make("src", fill=1)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        dst.write(0, b"child result")
        # Copying child data back into the parent must not build a cycle.
        dst.copy(0, src, 0, PAGE, policy=CopyPolicy.HISTORY)
        assert src.read(0, 12) == b"child result"
        assert not dst.parents.find(0) is None     # original link intact
        assert src.read(PAGE, 1) == bytes([2])

    def test_self_copy_rejected_for_history(self, pvm, make):
        src = make("src", fill=1)
        with pytest.raises(InvalidOperation):
            src.copy(0, src, 2 * PAGE, PAGE, policy=CopyPolicy.HISTORY)

    def test_self_copy_auto_uses_eager(self, pvm, make):
        src = make("src", fill=1)
        src.copy(0, src, 2 * PAGE, PAGE, policy=CopyPolicy.AUTO)
        assert src.read(2 * PAGE, 1) == bytes([1])


class TestAlignmentRules:
    def test_unaligned_history_copy_rejected(self, pvm, make):
        src = make("src", fill=1)
        dst = make("dst")
        with pytest.raises(InvalidOperation):
            src.copy(100, dst, 0, PAGE, policy=CopyPolicy.HISTORY)

    def test_auto_falls_back_to_eager_when_unaligned(self, pvm, make):
        src = make("src", fill=1)
        dst = make("dst")
        src.copy(100, dst, 52, 1000, policy=CopyPolicy.AUTO)
        assert dst.read(52, 5) == bytes([1] * 5)

    def test_zero_size_copy_rejected(self, pvm, make):
        src = make("src")
        dst = make("dst")
        with pytest.raises(InvalidOperation):
            src.copy(0, dst, 0, 0)


class TestCollapseGC:
    def test_collapse_merges_dead_parent(self, pvm, make):
        src = make("src", fill=1, pages=2)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        src.destroy()
        assert src.dead
        moved = pvm.collapse_history(dst)
        assert moved == 2
        assert src.destroyed
        assert dst.read(0, 1) == bytes([1])
        assert dst.read(PAGE, 1) == bytes([2])
        assert len(dst.parents) == 0

    def test_collapse_preserves_modified_pages(self, pvm, make):
        src = make("src", fill=1, pages=2)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        dst.write(0, b"mine")
        src.destroy()
        pvm.collapse_history(dst)
        assert dst.read(0, 4) == b"mine"
        assert dst.read(PAGE, 1) == bytes([2])

    def test_collapse_skips_live_parent(self, pvm, make):
        src = make("src", fill=1)
        dst = make("dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        assert pvm.collapse_history(dst) == 0
        assert not src.destroyed

    def test_collapse_chain_of_dead_nodes(self, pvm, make):
        """fork/exit chains (the paper's exceptional case) fold flat."""
        caches = [make("gen0", fill=1, pages=1)]
        for generation in range(1, 4):
            child = make(f"gen{generation}")
            caches[-1].copy(0, child, 0, PAGE, policy=CopyPolicy.HISTORY)
            child.write(0, bytes([generation]) * 4)
            caches[-1].destroy()
            caches.append(child)
        survivor = caches[-1]
        pvm.collapse_history(survivor)
        assert all(cache.destroyed for cache in caches[:-1])
        assert survivor.read(0, 4) == bytes([3]) * 4

    def test_event_counter_for_merge(self, pvm, make):
        src = make("src", fill=1, pages=2)
        dst = make("dst")
        src.copy(0, dst, 0, 2 * PAGE, policy=CopyPolicy.HISTORY)
        src.destroy()
        pvm.collapse_history(dst)
        assert pvm.clock.count(CostEvent.HISTORY_MERGE_PAGE) == 2
