"""Page replacement, pinning, and memory-pressure behaviour."""

import pytest

from repro.errors import OutOfFrames
from repro.gmi.interface import CopyPolicy
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.pvm import PagedVirtualMemory
from repro.units import KB

PAGE = 8 * KB


@pytest.fixture
def small_pvm():
    """A PVM with only 8 frames of RAM: pressure is easy to create."""
    return PagedVirtualMemory(memory_size=8 * PAGE)


def make_cache(pvm, name=None):
    return pvm.cache_create(ZeroFillProvider(), name=name)


class TestReclaim:
    def test_allocation_beyond_ram_evicts(self, small_pvm):
        pvm = small_pvm
        cache = make_cache(pvm)
        for page in range(16):                     # 2x physical memory
            cache.write(page * PAGE, bytes([page]) * 8)
        assert pvm.resident_page_count <= 8
        # Every page still readable: evicted ones pull back from swap.
        for page in range(16):
            assert cache.read(page * PAGE, 8) == bytes([page]) * 8

    def test_dirty_pages_pushed_before_eviction(self, small_pvm):
        pvm = small_pvm
        cache = make_cache(pvm)
        for page in range(12):
            cache.write(page * PAGE, bytes([page + 1]) * 8)
        assert cache.statistics.push_outs > 0

    def test_mapped_pages_shot_down_on_eviction(self, small_pvm):
        pvm = small_pvm
        ctx = pvm.context_create()
        cache = make_cache(pvm)
        ctx.region_create(0x40000, 8 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        for page in range(8):
            pvm.user_write(ctx, 0x40000 + page * PAGE, bytes([page + 1]))
        other = make_cache(pvm)
        for page in range(6):
            other.write(page * PAGE, b"pressure")
        # Evicted mappings refault transparently with the saved value.
        for page in range(8):
            assert pvm.user_read(ctx, 0x40000 + page * PAGE, 1) == \
                bytes([page + 1])

    def test_second_chance_prefers_unreferenced(self, small_pvm):
        pvm = small_pvm
        cache = make_cache(pvm)
        for page in range(8):
            cache.write(page * PAGE, bytes([page]))
        # Re-reference pages 0-3 so their reference bits are set again.
        for page in range(4):
            cache.read(page * PAGE, 1)
        for page in cache.pages.values():
            if page.offset >= 4 * PAGE:
                page.referenced = False
        pvm.reclaim_frames(2)
        survivors = set(cache.pages)
        assert {0, PAGE, 2 * PAGE, 3 * PAGE} <= survivors


class TestPinning:
    def test_pinned_pages_never_evicted(self, small_pvm):
        pvm = small_pvm
        ctx = pvm.context_create()
        cache = make_cache(pvm)
        region = ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        pvm.user_write(ctx, 0x40000, b"pinned")
        region.lock_in_memory()
        pinned_frames = {page.frame for page in cache.pages.values()}
        other = make_cache(pvm)
        for page in range(10):
            other.write(page * PAGE, b"x")
        assert {page.frame for page in cache.pages.values()} == pinned_frames

    def test_all_pinned_memory_exhausts(self, small_pvm):
        pvm = small_pvm
        ctx = pvm.context_create()
        cache = make_cache(pvm)
        region = ctx.region_create(0x40000, 8 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        region.lock_in_memory()
        other = make_cache(pvm)
        with pytest.raises(OutOfFrames):
            other.write(0, b"no frames left")

    def test_unlock_releases_pressure(self, small_pvm):
        pvm = small_pvm
        ctx = pvm.context_create()
        cache = make_cache(pvm)
        region = ctx.region_create(0x40000, 8 * PAGE, protection=Protection.RW,
                                   cache=cache, offset=0)
        region.lock_in_memory()
        region.unlock()
        other = make_cache(pvm)
        other.write(0, b"fine now")
        assert other.read(0, 8) == b"fine now"

    def test_cache_level_lock(self, small_pvm):
        pvm = small_pvm
        cache = make_cache(pvm)
        cache.write(0, b"data")
        cache.lock_in_memory(0, PAGE)
        assert cache.pages[0].pinned
        cache.unlock(0, PAGE)
        assert not cache.pages[0].pinned


class TestDeferredCopyUnderPressure:
    def test_history_copy_survives_eviction(self, small_pvm):
        pvm = small_pvm
        src = make_cache(pvm, "src")
        for page in range(4):
            src.write(page * PAGE, bytes([page + 1]) * 8)
        dst = make_cache(pvm, "dst")
        src.copy(0, dst, 0, 4 * PAGE, policy=CopyPolicy.HISTORY)
        src.write(0, b"new value")
        # Pressure: evict aggressively.
        other = make_cache(pvm, "pressure")
        for page in range(8):
            other.write(page * PAGE, b"p")
        # The copy still sees the original values.
        for page in range(4):
            assert dst.read(page * PAGE, 8) == bytes([page + 1]) * 8

    def test_per_page_copy_survives_eviction(self, small_pvm):
        pvm = small_pvm
        src = make_cache(pvm, "src")
        src.write(0, b"original!")
        dst = make_cache(pvm, "dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.PER_PAGE)
        other = make_cache(pvm, "pressure")
        for page in range(9):
            other.write(page * PAGE, b"p")
        assert dst.read(0, 9) == b"original!"

    def test_history_page_swap_roundtrip(self, small_pvm):
        """Pre-images pushed to a history object survive its eviction
        (the segmentCreate upcall gave it swappable backing)."""
        pvm = small_pvm
        src = make_cache(pvm, "src")
        src.write(0, b"preimage")
        dst = make_cache(pvm, "dst")
        src.copy(0, dst, 0, PAGE, policy=CopyPolicy.HISTORY)
        src.write(0, b"modified")     # pre-image pushed into dst
        pressure = make_cache(pvm, "pressure")
        for page in range(9):
            pressure.write(page * PAGE, b"p")
        assert dst.read(0, 8) == b"preimage"
