"""Trace export: Chrome-trace JSON and collapsed-stack flamegraphs."""

import io
import json

import pytest

from repro.kernel.clock import VirtualClock
from repro.obs import (
    Probe, RingBufferSink, to_chrome_trace, to_collapsed_stacks,
    write_chrome_trace, write_collapsed_stacks,
)


@pytest.fixture
def traced():
    """A probe over a virtual clock with a small recorded span tree:
    outer(3ms){ first(1ms), second(2ms){ leaf(0.5ms) } }."""
    clock = VirtualClock()
    sink = RingBufferSink()
    probe = Probe(sink=sink, clock=clock)
    with probe.span("outer") as outer:
        outer.set(kind="demo")
        with probe.span("first"):
            clock.advance(1.0)
        with probe.span("second") as second:
            second.event("bcopy_page", 2)
            with probe.span("leaf"):
                clock.advance(0.5)
            clock.advance(1.5)
    return probe, sink


class TestChromeTrace:
    def test_round_trips_through_json(self, traced):
        _, sink = traced
        buffer = io.StringIO()
        write_chrome_trace(sink.spans, buffer)
        document = json.loads(buffer.getvalue())
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["spans"] == 4

    def test_b_e_pairs_preserve_nesting(self, traced):
        _, sink = traced
        document = to_chrome_trace(sink.spans)
        virtual = [event for event in document["traceEvents"]
                   if event.get("pid") == 1 and event["ph"] in ("B", "E")]
        # Strict tree order: outer B, first B/E, second B, leaf B/E,
        # second E, outer E.
        sequence = [(event["ph"], event["name"]) for event in virtual]
        assert sequence == [
            ("B", "outer"), ("B", "first"), ("E", "first"),
            ("B", "second"), ("B", "leaf"), ("E", "leaf"),
            ("E", "second"), ("E", "outer"),
        ]
        # Balanced: every B has its E, innermost closed first.
        depth = 0
        for phase, _ in sequence:
            depth += 1 if phase == "B" else -1
            assert depth >= 0
        assert depth == 0

    def test_args_carry_identity_attrs_and_events(self, traced):
        _, sink = traced
        document = to_chrome_trace(sink.spans)
        begins = {event["name"]: event for event in document["traceEvents"]
                  if event.get("pid") == 1 and event["ph"] == "B"}
        outer, second = begins["outer"], begins["second"]
        assert outer["args"]["attr.kind"] == "demo"
        assert outer["args"]["parent"] is None
        assert outer["args"]["depth"] == 0
        assert second["args"]["parent"] == outer["args"]["id"]
        assert second["args"]["depth"] == 1
        assert second["args"]["event.bcopy_page"] == 2

    def test_virtual_timestamps_are_deterministic_microseconds(self, traced):
        _, sink = traced
        document = to_chrome_trace(sink.spans)
        begins = {event["name"]: event for event in document["traceEvents"]
                  if event.get("pid") == 1 and event["ph"] == "B"}
        assert begins["outer"]["ts"] == 0.0
        assert begins["second"]["ts"] == pytest.approx(1000.0)  # after first

    def test_wall_track_present_when_spans_have_wall_stamps(self, traced):
        _, sink = traced
        document = to_chrome_trace(sink.spans)
        wall = [event for event in document["traceEvents"]
                if event.get("pid") == 2]
        assert wall, "spans recorded live must produce a wall track"
        durations = [event for event in wall if event["ph"] in ("B", "E")]
        assert len(durations) == 8
        assert all(event["ts"] >= 0 for event in durations)

    def test_orphaned_spans_become_roots(self):
        # A bounded sink may have evicted the parent; the children must
        # still export (as roots), not vanish.
        clock = VirtualClock()
        sink = RingBufferSink(capacity=2)
        probe = Probe(sink=sink, clock=clock)
        with probe.span("parent"):
            with probe.span("a"):
                clock.advance(1.0)
            with probe.span("b"):
                clock.advance(1.0)
        # capacity 2: "parent" (finishing last) evicted "a"? No —
        # children finish first, so the buffer holds ("b", "parent");
        # force the orphan case the other way around.
        kept = [span for span in sink.spans if span.name == "b"]
        document = to_chrome_trace(kept)
        names = [event["name"] for event in document["traceEvents"]
                 if event.get("pid") == 1 and event["ph"] == "B"]
        assert names == ["b"]

    def test_unfinished_spans_are_skipped(self):
        clock = VirtualClock()
        sink = RingBufferSink()
        probe = Probe(sink=sink, clock=clock)
        with probe.span("done"):
            clock.advance(1.0)
        open_span = probe.span("never-closed")
        open_span.__enter__()
        document = to_chrome_trace(list(sink.spans) + [open_span])
        names = {event["name"] for event in document["traceEvents"]
                 if event.get("pid") == 1 and event["ph"] == "B"}
        assert names == {"done"}


class TestCollapsedStacks:
    def test_self_time_weights(self, traced):
        _, sink = traced
        text = to_collapsed_stacks(sink.spans)
        weights = {}
        for line in text.splitlines():
            path, _, weight = line.rpartition(" ")
            weights[path] = int(weight)
        # outer spent 3ms total, 1ms in first + 2ms in second -> 0 self.
        assert weights["outer"] == 0
        assert weights["outer;first"] == 1000
        # second: 2ms total minus leaf's 0.5ms = 1.5ms self.
        assert weights["outer;second"] == 1500
        assert weights["outer;second;leaf"] == 500

    def test_wall_weighting_and_writer(self, traced, tmp_path):
        _, sink = traced
        path = tmp_path / "stacks.txt"
        write_collapsed_stacks(sink.spans, path, weight="wall")
        for line in path.read_text().splitlines():
            stack, _, weight = line.rpartition(" ")
            assert stack
            assert int(weight) >= 0

    def test_unknown_weight_rejected(self, traced):
        _, sink = traced
        with pytest.raises(ValueError):
            to_collapsed_stacks(sink.spans, weight="cpu")

    def test_empty_input_yields_empty_text(self):
        assert to_collapsed_stacks([]) == ""
