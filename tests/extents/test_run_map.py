"""RunMap: run-length translation storage with frame arithmetic."""

from repro.extents import RunMap


def as_dict(runmap):
    return {key: (frame, attr) for key, frame, attr in runmap.items()}


class TestBasics:
    def test_empty(self):
        runs = RunMap()
        assert len(runs) == 0
        assert runs.run_count == 0
        assert runs.get(0) is None
        assert 0 not in runs

    def test_single_key(self):
        runs = RunMap()
        runs.set(5, 42, "rw")
        assert runs.get(5) == (42, "rw")
        assert 5 in runs
        assert len(runs) == 1
        assert runs.run_count == 1

    def test_run_frame_arithmetic(self):
        runs = RunMap()
        runs.set_run(100, 4, 7, "rw")
        assert runs.get(100) == (7, "rw")
        assert runs.get(103) == (10, "rw")
        assert runs.get(104) is None
        assert len(runs) == 4

    def test_million_page_run_is_one_entry(self):
        runs = RunMap()
        runs.set_run(0, 1_000_000, 0, "rw")
        assert len(runs) == 1_000_000
        assert runs.run_count == 1
        assert runs.get(999_999) == (999_999, "rw")


class TestCoalescing:
    def test_contiguous_frames_merge(self):
        runs = RunMap()
        runs.set(0, 10, "rw")
        runs.set(1, 11, "rw")
        runs.set(2, 12, "rw")
        assert runs.run_count == 1
        assert runs.runs() == [(0, 3, 10, "rw")]

    def test_noncontiguous_frames_do_not_merge(self):
        runs = RunMap()
        runs.set(0, 10, "rw")
        runs.set(1, 99, "rw")
        assert runs.run_count == 2

    def test_different_attr_does_not_merge(self):
        runs = RunMap()
        runs.set(0, 10, "rw")
        runs.set(1, 11, "ro")
        assert runs.run_count == 2

    def test_bridge_merges_both_sides(self):
        runs = RunMap()
        runs.set_run(0, 2, 10, "rw")
        runs.set_run(4, 2, 14, "rw")
        runs.set_run(2, 2, 12, "rw")
        assert runs.runs() == [(0, 6, 10, "rw")]

    def test_overwrite_splits_run(self):
        runs = RunMap()
        runs.set_run(0, 6, 10, "rw")
        runs.set(3, 50, "rw")
        assert runs.run_count == 3
        assert runs.get(2) == (12, "rw")
        assert runs.get(3) == (50, "rw")
        assert runs.get(4) == (14, "rw")
        assert len(runs) == 6


class TestClearRange:
    def test_clear_middle(self):
        runs = RunMap()
        runs.set_run(0, 10, 100, "rw")
        assert runs.clear_range(3, 6) == 3
        assert len(runs) == 7
        assert runs.get(2) == (102, "rw")
        assert runs.get(3) is None
        assert runs.get(6) == (106, "rw")

    def test_clear_spanning_runs(self):
        runs = RunMap()
        runs.set_run(0, 2, 0, "rw")
        runs.set_run(4, 2, 10, "ro")
        runs.set_run(8, 2, 20, "rw")
        assert runs.clear_range(1, 9) == 4
        assert as_dict(runs) == {0: (0, "rw"), 9: (21, "rw")}

    def test_delete(self):
        runs = RunMap()
        runs.set(3, 30, "rw")
        assert runs.delete(3) is True
        assert runs.delete(3) is False
        assert len(runs) == 0


class TestAttrRange:
    def test_set_attr_skips_holes(self):
        runs = RunMap()
        runs.set_run(0, 2, 0, "rw")
        runs.set_run(4, 2, 4, "rw")
        changed = runs.set_attr_range(0, 6, "ro")
        assert changed == 4
        assert runs.get(1) == (1, "ro")
        assert runs.get(5) == (5, "ro")
        assert runs.get(2) is None

    def test_set_attr_partial_run_splits(self):
        runs = RunMap()
        runs.set_run(0, 6, 0, "rw")
        assert runs.set_attr_range(2, 4, "ro") == 2
        assert runs.get(1) == (1, "rw")
        assert runs.get(2) == (2, "ro")
        assert runs.get(4) == (4, "rw")
        assert len(runs) == 6

    def test_noop_when_attr_equal(self):
        runs = RunMap()
        runs.set_run(0, 4, 0, "rw")
        assert runs.set_attr_range(0, 4, "rw") == 0
        assert runs.run_count == 1


class TestQueries:
    def test_first_gap(self):
        runs = RunMap()
        runs.set_run(2, 3, 0, "rw")
        assert runs.first_gap(0, 10) == 0
        assert runs.first_gap(2, 5) is None
        assert runs.first_gap(2, 6) == 5
        assert runs.first_gap(3, 4) is None

    def test_covered_count(self):
        runs = RunMap()
        runs.set_run(0, 4, 0, "rw")
        runs.set_run(8, 4, 8, "rw")
        assert runs.covered_count(2, 10) == 4
        assert runs.covered_count(4, 8) == 0

    def test_runs_in_adjusts_frames(self):
        runs = RunMap()
        runs.set_run(0, 8, 100, "rw")
        assert runs.runs_in(3, 5) == [(3, 2, 103, "rw")]

    def test_keys_in(self):
        runs = RunMap()
        runs.set_run(0, 2, 0, "rw")
        runs.set_run(5, 2, 5, "rw")
        assert runs.keys_in(1, 6) == [1, 5]

    def test_clear(self):
        runs = RunMap()
        runs.set_run(0, 5, 0, "rw")
        runs.clear()
        assert len(runs) == 0
        assert runs.run_count == 0
