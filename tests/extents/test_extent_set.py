"""ExtentSet: run-length set semantics and O(runs) storage."""

import pytest

from repro.extents import ExtentSet


class TestBasics:
    def test_empty(self):
        extents = ExtentSet()
        assert len(extents) == 0
        assert not extents
        assert extents.run_count == 0
        assert 5 not in extents
        assert extents.runs() == []

    def test_single_range(self):
        extents = ExtentSet()
        extents.add_range(10, 14)
        assert len(extents) == 4
        assert extents.runs() == [(10, 4)]
        assert 10 in extents and 13 in extents
        assert 9 not in extents and 14 not in extents

    def test_constructor_runs(self):
        extents = ExtentSet([(0, 2), (10, 3)])
        assert extents.runs() == [(0, 2), (10, 3)]
        assert len(extents) == 5

    def test_empty_range_is_noop(self):
        extents = ExtentSet()
        extents.add_range(5, 5)
        extents.add_range(7, 3)
        assert len(extents) == 0


class TestCoalescing:
    def test_adjacent_runs_merge(self):
        extents = ExtentSet()
        extents.add_range(0, 4)
        extents.add_range(4, 8)
        assert extents.runs() == [(0, 8)]
        assert extents.run_count == 1

    def test_overlapping_runs_merge(self):
        extents = ExtentSet()
        extents.add_range(0, 5)
        extents.add_range(3, 9)
        assert extents.runs() == [(0, 9)]
        assert len(extents) == 9

    def test_bridge_merges_three(self):
        extents = ExtentSet()
        extents.add_range(0, 2)
        extents.add_range(6, 8)
        extents.add_range(2, 6)
        assert extents.runs() == [(0, 8)]

    def test_disjoint_runs_stay_apart(self):
        extents = ExtentSet()
        extents.add(0)
        extents.add(2)
        extents.add(4)
        assert extents.run_count == 3
        assert len(extents) == 3

    def test_idempotent_adds(self):
        extents = ExtentSet()
        extents.add_range(0, 8)
        extents.add_range(2, 5)
        assert extents.runs() == [(0, 8)]
        assert len(extents) == 8

    def test_million_element_run_is_one_entry(self):
        extents = ExtentSet()
        extents.add_range(0, 1_000_000)
        assert len(extents) == 1_000_000
        assert extents.run_count == 1


class TestDiscard:
    def test_discard_absent(self):
        extents = ExtentSet([(0, 4)])
        assert extents.discard(10) == 0
        assert extents.discard_range(100, 200) == 0
        assert len(extents) == 4

    def test_discard_splits_run(self):
        extents = ExtentSet([(0, 10)])
        assert extents.discard_range(3, 6) == 3
        assert extents.runs() == [(0, 3), (6, 4)]
        assert len(extents) == 7

    def test_discard_trims_edges(self):
        extents = ExtentSet([(0, 10)])
        assert extents.discard_range(0, 2) == 2
        assert extents.discard_range(8, 12) == 2
        assert extents.runs() == [(2, 6)]

    def test_discard_spanning_many_runs(self):
        extents = ExtentSet([(0, 2), (4, 2), (8, 2), (12, 2)])
        assert extents.discard_range(1, 13) == 6
        assert extents.runs() == [(0, 1), (13, 1)]

    def test_clear(self):
        extents = ExtentSet([(0, 4), (8, 4)])
        extents.clear()
        assert len(extents) == 0
        assert extents.run_count == 0


class TestQueries:
    def test_runs_in_clips(self):
        extents = ExtentSet([(0, 4), (8, 4), (16, 4)])
        assert extents.runs_in(2, 18) == [(2, 2), (8, 4), (16, 2)]
        assert extents.runs_in(4, 8) == []
        assert extents.count_in(2, 18) == 8

    def test_iteration_and_equality(self):
        extents = ExtentSet([(0, 2), (5, 2)])
        assert list(extents) == [0, 1, 5, 6]
        assert extents == ExtentSet([(0, 2), (5, 2)])
        assert extents != ExtentSet([(0, 2)])


@pytest.mark.parametrize("operations", [
    [("add", 0, 10), ("del", 5, 6), ("add", 5, 6)],
    [("add", 0, 3), ("add", 10, 13), ("add", 3, 10)],
    [("add", 0, 100), ("del", 0, 100)],
])
def test_matches_set_model(operations):
    extents = ExtentSet()
    model = set()
    for op, start, end in operations:
        if op == "add":
            extents.add_range(start, end)
            model.update(range(start, end))
        else:
            extents.discard_range(start, end)
            model.difference_update(range(start, end))
        assert set(extents) == model
        assert len(extents) == len(model)
