"""IntervalMap: disjoint interval bookkeeping for region maps."""

import pytest

from repro.extents import IntervalMap


@pytest.fixture
def imap():
    mapping = IntervalMap()
    mapping.add(100, 200, "a")
    mapping.add(300, 400, "b")
    return mapping


class TestAdd:
    def test_ordering(self, imap):
        imap.add(250, 280, "c")
        assert [value for _, _, value in imap.items()] == ["a", "c", "b"]
        assert len(imap) == 3

    def test_empty_interval_rejected(self, imap):
        with pytest.raises(ValueError):
            imap.add(50, 50, "x")
        with pytest.raises(ValueError):
            imap.add(60, 50, "x")

    @pytest.mark.parametrize("start,end", [
        (150, 250),    # overlaps tail of a
        (50, 150),     # overlaps head of a
        (120, 180),    # inside a
        (50, 500),     # spans everything
        (100, 200),    # exact duplicate
        (399, 401),    # overlaps tail of b
    ])
    def test_overlap_rejected(self, imap, start, end):
        with pytest.raises(ValueError):
            imap.add(start, end, "x")
        assert len(imap) == 2

    def test_adjacent_allowed(self, imap):
        imap.add(200, 300, "mid")
        assert len(imap) == 3


class TestLookup:
    def test_get(self, imap):
        assert imap.get(100) == "a"
        assert imap.get(199) == "a"
        assert imap.get(200) is None
        assert imap.get(99, default="missing") == "missing"
        assert imap.get(350) == "b"

    def test_interval_at(self, imap):
        assert imap.interval_at(150) == (100, 200, "a")
        assert imap.interval_at(250) is None

    def test_overlapping(self, imap):
        assert imap.overlapping(150, 350) == \
            [(100, 200, "a"), (300, 400, "b")]
        assert imap.overlapping(200, 300) == []
        assert imap.overlapping(199, 200) == [(100, 200, "a")]
        assert imap.overlapping(150, 150) == []

    def test_values(self, imap):
        assert imap.values() == ["a", "b"]


class TestRemoveResize:
    def test_remove(self, imap):
        assert imap.remove(100) == "a"
        assert imap.get(150) is None
        assert len(imap) == 1

    def test_remove_requires_exact_start(self, imap):
        with pytest.raises(KeyError):
            imap.remove(150)

    def test_set_end_shrinks(self, imap):
        imap.set_end(100, 150)
        assert imap.get(149) == "a"
        assert imap.get(150) is None

    def test_set_end_grow_into_neighbour_rejected(self, imap):
        with pytest.raises(ValueError):
            imap.set_end(100, 301)
        imap.set_end(100, 300)      # adjacent is fine
        assert imap.get(299) == "a"

    def test_set_end_empty_rejected(self, imap):
        with pytest.raises(ValueError):
            imap.set_end(100, 100)

    def test_clear(self, imap):
        imap.clear()
        assert len(imap) == 0
        assert not imap
