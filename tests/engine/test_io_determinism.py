"""``io_threads`` never moves the accounting — only the wall clock.

The concurrent fault engine's core invariant is the charge/byte split:
every virtual-clock charge lands on the submitting kernel thread, in
program order, at submit time; pool threads move bytes only.  So a run
at ``io_threads=0`` (the strict synchronous pass-through) and a run at
``io_threads=2`` (the shipping configuration) must agree bit-for-bit on

* the virtual clock (both the timed region and the cumulative total),
* the user-visible bytes, and
* every accounting counter (faults, pulls, charges, hits/misses).

Only the deferral bookkeeping may differ — ``io.*`` and the write-back
queue's ``writeback.deferred`` / ``writeback.stall`` describe *how* the
bytes moved, not *what* was charged.  This file is the regression gate
the docs point at: if it fails, the scheduler leaked a charge onto a
pool thread (or reordered one), and the Table 6/7 goldens are next.
"""

import pytest

from repro.bench.harness import WORKLOADS
from repro.kernel.clock import ClockRegion

#: Counters that legitimately differ between the synchronous and the
#: threaded run: queue/deferral mechanics, not accounting.
_DEFERRAL_PREFIXES = ("io.", "writeback.deferred", "writeback.stall")


def _accounting_counters(snapshot: dict) -> dict:
    return {key: value
            for key, value in snapshot["counters"].items()
            if not key.startswith(_DEFERRAL_PREFIXES)}


def _run(workload_name: str, backend: str, io_threads: int) -> dict:
    """One full workload run; returns every observable we compare."""
    workload = WORKLOADS[workload_name]
    state = workload.setup(backend, None, io_threads)
    vm = state["vm"]
    with ClockRegion(state["clock"]) as timer:
        workload.body(state)
    io = getattr(vm, "io", None)
    deferred = 0
    if io is not None:
        io.flush()                  # depth gauge settles to zero
        deferred = io.stats["deferred"]
    snapshot = vm.metrics_snapshot()
    observed = {
        "body_virtual_ms": timer.elapsed,
        "total_virtual_ms": snapshot["meta"]["virtual_ms"],
        "counters": _accounting_counters(snapshot),
        "deferred": deferred,
        "bytes": _visible_bytes(state),
    }
    if io is not None:
        io.close()
    return observed


def _visible_bytes(state: dict) -> bytes:
    """Whatever the workload left behind, as a user would read it."""
    cache = state.get("cache")
    if cache is None:
        return b""
    vm = state["vm"]
    return vm.cache_read(cache, 0, 96 * vm.page_size)


def _assert_identical(synchronous: dict, threaded: dict) -> None:
    # Exact float equality is the point: the charge sequences are the
    # same floats added in the same order, not merely close.
    assert threaded["body_virtual_ms"] == synchronous["body_virtual_ms"]
    assert threaded["total_virtual_ms"] == synchronous["total_virtual_ms"]
    assert threaded["bytes"] == synchronous["bytes"]
    assert threaded["counters"] == synchronous["counters"]


@pytest.mark.parametrize("backend", ("pvm", "mach"))
class TestWritebackStorm:
    """The write-behind-heavy cell: the run that actually defers."""

    def test_accounting_identical_across_io_threads(self, backend):
        synchronous = _run("writeback_storm", backend, io_threads=0)
        threaded = _run("writeback_storm", backend, io_threads=2)
        _assert_identical(synchronous, threaded)

    def test_threaded_run_really_deferred(self, backend):
        # Guard against the comparison passing vacuously: the storm
        # must exercise the queue, or this file tests nothing.
        threaded = _run("writeback_storm", backend, io_threads=2)
        assert threaded["deferred"] > 0

    def test_synchronous_run_never_defers(self, backend):
        synchronous = _run("writeback_storm", backend, io_threads=0)
        assert synchronous["deferred"] == 0


@pytest.mark.parametrize("backend", ("pvm", "mach"))
class TestDemandPaths:
    """Pull-heavy cells: reads are always synchronous, so these pin
    that the scheduler's read path is a true pass-through."""

    def test_zero_fill_accounting_identical(self, backend):
        synchronous = _run("zero_fill", backend, io_threads=0)
        threaded = _run("zero_fill", backend, io_threads=2)
        _assert_identical(synchronous, threaded)

    def test_pageout_accounting_identical(self, backend):
        synchronous = _run("pageout", backend, io_threads=0)
        threaded = _run("pageout", backend, io_threads=2)
        _assert_identical(synchronous, threaded)
