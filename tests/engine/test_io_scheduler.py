"""The I/O scheduler: pass-through, deferral, coalescing, forcing.

The contract under test is the charge/byte split: the protocol half
(``prepare_write`` / ``charge_read``) always runs on the submitting
thread, the byte half may be deferred — and a reader must never see
the store without bytes it already paid for.
"""

import threading

import pytest

from repro.engine import DEMAND, READAHEAD, WRITE_BEHIND, IoScheduler
from repro.segments.swap_mapper import SwapMapper


class RecordingMapper(SwapMapper):
    """A swap mapper that records the order of protocol/byte calls."""

    def __init__(self):
        super().__init__()
        self.calls = []

    def prepare_write(self, key, offset, data):
        self.calls.append(("prepare", offset, len(data)))
        return super().prepare_write(key, offset, data)

    def write_range(self, key, offset, data):
        self.calls.append(("write_range", offset, len(data)))
        super().write_range(key, offset, data)

    def read_segment(self, key, offset, size):
        self.calls.append(("read", offset, size))
        return super().read_segment(key, offset, size)


class GatedMapper(SwapMapper):
    """Blocks every ``write_range`` until ``release()`` — pins the one
    worker so later submissions stay queued deterministically."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.entered = threading.Event()

    def write_range(self, key, offset, data):
        self.entered.set()
        assert self.gate.wait(timeout=10), "gate never released"
        super().write_range(key, offset, data)

    def release(self):
        self.gate.set()


def make_segment(mapper):
    return mapper.create_temporary().key


class TestSynchronousPassThrough:
    def test_zero_threads_starts_no_workers(self):
        io = IoScheduler(threads=0)
        assert io.threads == 0
        assert threading.active_count() == threading.active_count()
        assert not io._workers

    def test_write_is_prepare_then_range_on_caller(self):
        mapper = RecordingMapper()
        key = make_segment(mapper)
        io = IoScheduler(threads=0)
        io.write_segment(mapper, key, 0, b"hello")
        assert mapper.calls == [("prepare", 0, 5), ("write_range", 0, 5)]
        assert io.read_segment(mapper, key, 0, 5) == b"hello"

    def test_write_behind_priority_still_executes_inline(self):
        mapper = SwapMapper()
        key = make_segment(mapper)
        io = IoScheduler(threads=0)
        with io.classify(WRITE_BEHIND):
            io.write_segment(mapper, key, 0, b"sync")
        assert io.depth == 0
        assert mapper.read_segment(key, 0, 4) == b"sync"
        assert io.stats["inline"] == 1
        assert io.stats["deferred"] == 0


class TestDeferral:
    def test_write_behind_defers_and_flush_drains(self):
        mapper = GatedMapper()
        key = make_segment(mapper)
        io = IoScheduler(threads=1)
        try:
            with io.classify(WRITE_BEHIND):
                io.write_segment(mapper, key, 0, b"deferred")
            assert io.stats["deferred"] == 1
            mapper.release()
            io.flush()
            assert io.depth == 0
            assert mapper.read_range(key, 0, 8) == b"deferred"
        finally:
            mapper.release()
            io.close()

    def test_demand_and_readahead_never_defer(self):
        mapper = SwapMapper()
        key = make_segment(mapper)
        io = IoScheduler(threads=1)
        try:
            for priority in (DEMAND, READAHEAD):
                with io.classify(priority):
                    io.write_segment(mapper, key, 0, b"now")
                assert io.depth == 0
            assert io.stats["deferred"] == 0
        finally:
            io.close()

    def test_worker_error_surfaces_at_flush(self):
        class Exploding(SwapMapper):
            def write_range(self, key, offset, data):
                raise RuntimeError("store died")

        mapper = Exploding()
        key = make_segment(mapper)
        io = IoScheduler(threads=1)
        with io.classify(WRITE_BEHIND):
            io.write_segment(mapper, key, 0, b"boom")
        with pytest.raises(RuntimeError, match="store died"):
            io.flush()
        io.close()

    def test_close_drains_then_submissions_run_inline(self):
        mapper = SwapMapper()
        key = make_segment(mapper)
        io = IoScheduler(threads=1)
        with io.classify(WRITE_BEHIND):
            io.write_segment(mapper, key, 0, b"before")
        io.close()
        assert mapper.read_range(key, 0, 6) == b"before"
        with io.classify(WRITE_BEHIND):
            io.write_segment(mapper, key, 8, b"after")
        assert mapper.read_range(key, 8, 5) == b"after"


class TestCoalescing:
    # Below the dispatch watermark workers stay asleep, so small
    # deferred writes sit queued deterministically — no need to pin
    # the pool on a decoy.

    def test_touching_writes_merge_into_one_request(self):
        io = IoScheduler(threads=1)
        mapper = SwapMapper()
        key = make_segment(mapper)
        try:
            with io.classify(WRITE_BEHIND):
                io.write_segment(mapper, key, 0, b"aaaa")
                io.write_segment(mapper, key, 4, b"bbbb")   # touching
                io.write_segment(mapper, key, 2, b"CC")     # overlapping
            assert io.stats["coalesced"] == 2
            assert io.depth == 1
            assert io.coalesce_rate == pytest.approx(2 / 3)
            io.flush()
            # The overlap landed newest-last: CC over the aaaa bytes.
            assert mapper.read_range(key, 0, 8) == b"aaCCbbbb"
        finally:
            io.close()

    def test_disjoint_writes_stay_separate(self):
        io = IoScheduler(threads=1)
        mapper = SwapMapper()
        key = make_segment(mapper)
        try:
            with io.classify(WRITE_BEHIND):
                io.write_segment(mapper, key, 0, b"aa")
                io.write_segment(mapper, key, 100, b"bb")
            assert io.stats["coalesced"] == 0
            assert io.depth == 2
            io.flush()
            assert mapper.read_range(key, 0, 2) == b"aa"
            assert mapper.read_range(key, 100, 2) == b"bb"
        finally:
            io.close()

    def test_merged_request_is_a_single_contiguous_write(self):
        # Coalescing is zero-copy at submit: fragments accumulate and
        # are stitched only at execution — a contiguous run of
        # fragments must still reach the store as ONE write_range.
        io = IoScheduler(threads=1)
        mapper = RecordingMapper()
        key = make_segment(mapper)
        try:
            with io.classify(WRITE_BEHIND):
                for index in range(4):
                    io.write_segment(mapper, key, index * 4, b"abcd")
            assert io.stats["coalesced"] == 3
            io.flush()
            writes = [call for call in mapper.calls
                      if call[0] == "write_range"]
            assert writes == [("write_range", 0, 16)]
            assert mapper.read_range(key, 0, 16) == b"abcd" * 4
        finally:
            io.close()

    def test_merging_stops_at_the_transfer_size_bound(self):
        io = IoScheduler(threads=1, max_coalesce_bytes=8)
        mapper = SwapMapper()
        key = make_segment(mapper)
        try:
            with io.classify(WRITE_BEHIND):
                io.write_segment(mapper, key, 0, b"aaaa")
                io.write_segment(mapper, key, 4, b"bbbb")   # 8 bytes: fits
                io.write_segment(mapper, key, 8, b"cccc")   # 12: new request
            assert io.stats["coalesced"] == 1
            assert io.depth == 2
            io.flush()
            assert mapper.read_range(key, 0, 12) == b"aaaabbbbcccc"
        finally:
            io.close()


class TestForcing:
    def test_read_forces_overlapping_queued_write(self):
        mapper = SwapMapper()
        key = make_segment(mapper)
        io = IoScheduler(threads=1)
        try:
            with io.classify(WRITE_BEHIND):
                io.write_segment(mapper, key, 0, b"paid-for")
            # The read must observe the deferred bytes: the queued
            # write is executed on the reading thread first.
            assert io.read_segment(mapper, key, 0, 8) == b"paid-for"
            assert io.stats["forced"] == 1
            assert io.depth == 0
        finally:
            io.close()

    def test_synchronous_write_supersedes_covered_queued_write(self):
        mapper = RecordingMapper()
        key = make_segment(mapper)
        io = IoScheduler(threads=1)
        try:
            with io.classify(WRITE_BEHIND):
                io.write_segment(mapper, key, 0, b"old bytes")
            io.write_segment(mapper, key, 0, b"new bytes")  # DEMAND
            assert io.stats["superseded"] == 1
            io.flush()
            # The superseded request never executed: one write_range.
            writes = [call for call in mapper.calls
                      if call[0] == "write_range"]
            assert writes == [("write_range", 0, 9)]
            assert mapper.read_range(key, 0, 9) == b"new bytes"
        finally:
            io.close()

    def test_discard_drops_queued_writes_for_key(self):
        mapper = RecordingMapper()
        key = make_segment(mapper)
        io = IoScheduler(threads=1)
        try:
            with io.classify(WRITE_BEHIND):
                io.write_segment(mapper, key, 0, b"wasted")
            io.discard(mapper, key)
            io.flush()
            assert not [call for call in mapper.calls
                        if call[0] == "write_range"]
        finally:
            io.close()


class TestBackpressure:
    def test_over_budget_write_executes_on_submitter(self):
        mapper = SwapMapper()
        key = make_segment(mapper)
        io = IoScheduler(threads=1, max_buffered_bytes=4)
        try:
            with io.classify(WRITE_BEHIND):
                io.write_segment(mapper, key, 100, b"too big for queue")
            assert io.stats["stalls"] == 1
            # Absorbed inline: the bytes are already in the store.
            assert mapper.read_range(key, 100, 17) == b"too big for queue"
            assert io.depth == 0
        finally:
            io.close()

    def test_dispatch_waits_for_the_watermark(self):
        # Batched dispatch: the worker is woken only once wake_bytes
        # are pending (or at flush) — small writes stay queued.
        mapper = GatedMapper()
        key = make_segment(mapper)
        io = IoScheduler(threads=1, wake_bytes=64)
        try:
            with io.classify(WRITE_BEHIND):
                io.write_segment(mapper, key, 0, b"a" * 32)
            assert not mapper.entered.wait(timeout=0.1)
            assert io.depth == 1
            with io.classify(WRITE_BEHIND):
                io.write_segment(mapper, key, 100, b"b" * 32)
            # 64 pending bytes reach the watermark: the pool wakes.
            assert mapper.entered.wait(timeout=10)
            mapper.release()
            io.flush()
            assert io.depth == 0
        finally:
            mapper.release()
            io.close()


class TestScopes:
    def test_on_done_fires_immediately_when_nothing_deferred(self):
        io = IoScheduler(threads=0)
        fired = []
        with io.classify(WRITE_BEHIND, on_done=lambda: fired.append(1)):
            pass
        assert fired == [1]

    def test_on_done_waits_for_the_deferred_write(self):
        mapper = GatedMapper()
        key = make_segment(mapper)
        io = IoScheduler(threads=1)
        fired = threading.Event()
        try:
            with io.classify(WRITE_BEHIND, on_done=fired.set):
                io.write_segment(mapper, key, 0, b"later")
            assert not fired.is_set()
            mapper.release()
            io.flush()
            assert fired.wait(timeout=10)
        finally:
            mapper.release()
            io.close()

    def test_on_done_fires_exactly_once_across_coalesce(self):
        mapper = SwapMapper()
        key = make_segment(mapper)
        io = IoScheduler(threads=1)
        fired = []
        try:
            with io.classify(WRITE_BEHIND, on_done=lambda: fired.append(1)):
                io.write_segment(mapper, key, 0, b"aa")
                io.write_segment(mapper, key, 2, b"bb")    # coalesces
            io.flush()
            assert fired == [1]
        finally:
            io.close()


class TestOpaqueMappers:
    def test_split_io_false_routes_full_segment_ops(self):
        class Proxy(SwapMapper):
            split_io = False

            def __init__(self):
                super().__init__()
                self.segment_ops = []

            def read_segment(self, key, offset, size):
                self.segment_ops.append("read")
                return super().read_segment(key, offset, size)

            def write_segment(self, key, offset, data):
                self.segment_ops.append("write")
                super().write_segment(key, offset, data)

        mapper = Proxy()
        key = make_segment(mapper)
        io = IoScheduler(threads=1)
        try:
            with io.classify(WRITE_BEHIND):
                io.write_segment(mapper, key, 0, b"direct")
            # Never deferred: the bytes are visible immediately.
            assert io.read_segment(mapper, key, 0, 6) == b"direct"
            assert mapper.segment_ops == ["write", "read"]
            assert io.stats["deferred"] == 0
        finally:
            io.close()
