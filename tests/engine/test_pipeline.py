"""The staged fault-resolution engine, across all three backends.

The tentpole claim: every GMI backend resolves faults through the one
``repro.engine`` pipeline — locate, authorize, resolve, materialize,
install — and each stage is observable as an ``engine.stage.<name>``
counter (always) and span (when a sink is attached).
"""

import pytest

from repro import (
    MachVirtualMemory, PagedVirtualMemory, Protection,
    RealTimeVirtualMemory, ZeroFillProvider,
)
from repro.engine import (
    FAULT_STAGES, RESOLUTION_STAGES, FaultPipeline, FaultTask, VmBackend,
)
from repro.obs import NULL_PROBE, Probe, RingBufferSink
from repro.pvm.hw_interface import FaultRecord
from repro.units import KB, MB

PAGE = 8 * KB
BACKENDS = (PagedVirtualMemory, MachVirtualMemory, RealTimeVirtualMemory)


class RecordingBackend:
    """Stub VmBackend that logs stage execution order."""

    probe = NULL_PROBE

    def __init__(self):
        self.order = []

    def stage_locate(self, task):
        self.order.append("locate")

    def stage_authorize(self, task):
        self.order.append("authorize")

    def stage_resolve(self, task):
        self.order.append("resolve")

    def stage_materialize(self, task):
        self.order.append("materialize")

    def stage_install(self, task):
        self.order.append("install")
        task.installed = True


class TestPipelineMechanics:
    def test_stages_run_in_order(self):
        backend = RecordingBackend()
        task = FaultTask(space=1, address=0x40000, write=False)
        result = FaultPipeline(backend).run(task)
        assert result is task
        assert backend.order == list(FAULT_STAGES)
        assert task.installed

    def test_resolution_subset_skips_locate(self):
        backend = RecordingBackend()
        FaultPipeline(backend).run(
            FaultTask(space=1, address=0, write=True), RESOLUTION_STAGES)
        assert backend.order == list(RESOLUTION_STAGES)

    def test_stage_counters_increment_without_a_sink(self):
        registry_probe = Probe()
        backend = RecordingBackend()
        backend.probe = registry_probe
        pipeline = FaultPipeline(backend)
        assert not registry_probe.enabled
        pipeline.run(FaultTask(space=1, address=0, write=False))
        counters = registry_probe.registry.counter_values()
        for name in FAULT_STAGES:
            assert counters[f"engine.stage.{name}"] == 1

    def test_stage_exception_propagates_and_stops_the_pipeline(self):
        class Exploding(RecordingBackend):
            def stage_resolve(self, task):
                raise RuntimeError("boom")

        backend = Exploding()
        with pytest.raises(RuntimeError):
            FaultPipeline(backend).run(
                FaultTask(space=1, address=0, write=False))
        assert backend.order == ["locate", "authorize"]


class TestBackendConformance:
    @pytest.mark.parametrize("backend_cls", BACKENDS,
                             ids=lambda cls: cls.name)
    def test_backend_satisfies_the_protocol(self, backend_cls):
        vm = backend_cls(memory_size=4 * MB)
        assert isinstance(vm, VmBackend)
        assert isinstance(vm.engine, FaultPipeline)
        assert vm.engine.backend is vm

    @pytest.mark.parametrize("backend_cls", BACKENDS,
                             ids=lambda cls: cls.name)
    def test_one_fault_emits_all_five_stage_spans(self, backend_cls):
        """Smoke: a fault through each backend crosses every stage,
        visible as engine.stage.* spans nested in fault.resolve."""
        vm = backend_cls(memory_size=4 * MB)
        sink = RingBufferSink()
        vm.probe.set_sink(sink)
        cache = vm.cache_create(ZeroFillProvider(), name="eng")
        context = vm.context_create("eng")
        context.region_create(0x40000, PAGE, protection=Protection.RW,
                              cache=cache, offset=0)
        context.switch()
        if backend_cls is RealTimeVirtualMemory:
            # Eager regions never fault after create; drive the fault
            # path directly with a synthetic hardware descriptor.
            vm.handle_fault(FaultRecord(space=context.space,
                                        address=0x40000, write=True,
                                        protection_violation=False,
                                        supervisor=True))
        else:
            vm.user_write(context, 0x40000, b"x")

        spans = {record.name: record for record in sink.spans
                 if record.name.startswith("engine.stage.")}
        assert set(spans) == {f"engine.stage.{name}"
                              for name in FAULT_STAGES}
        fault_spans = [record for record in sink.spans
                       if record.name == "fault.resolve"]
        assert fault_spans
        parent_ids = {record.span_id for record in fault_spans}
        for record in spans.values():
            assert record.parent_id in parent_ids
        counters = vm.registry.counter_values()
        for name in FAULT_STAGES:
            assert counters[f"engine.stage.{name}"] >= 1

    @pytest.mark.parametrize("backend_cls", BACKENDS,
                             ids=lambda cls: cls.name)
    def test_stage_counters_on_without_tracing(self, backend_cls):
        vm = backend_cls(memory_size=4 * MB)
        assert not vm.probe.enabled
        cache = vm.cache_create(ZeroFillProvider(), name="dark")
        context = vm.context_create("dark")
        context.region_create(0x40000, PAGE, protection=Protection.RW,
                              cache=cache, offset=0)
        context.switch()
        if backend_cls is RealTimeVirtualMemory:
            vm.handle_fault(FaultRecord(space=context.space,
                                        address=0x40000, write=True,
                                        protection_violation=False,
                                        supervisor=True))
        else:
            vm.user_write(context, 0x40000, b"x")
        counters = vm.registry.counter_values()
        for name in FAULT_STAGES:
            assert counters[f"engine.stage.{name}"] >= 1
