"""The in-flight table: extent-granular dedup of concurrent pulls."""

import pytest

from repro.engine import InFlightTable
from repro.errors import InvalidOperation
from repro.kernel.sync import ThreadedSync

PAGE = 4096


class FakeCache:
    _serial = 0

    def __init__(self, name="seg"):
        FakeCache._serial += 1
        self.cache_id = FakeCache._serial
        self.name = name


def make_table():
    sync = ThreadedSync()
    return InFlightTable(sync, sync.lock(), page_size=PAGE)


class TestLifecycle:
    def test_begin_aligns_to_page_bounds(self):
        table = make_table()
        cache = FakeCache()
        entry = table.begin(cache, PAGE + 10, 100)
        assert entry.offset == PAGE
        assert entry.size == PAGE
        assert entry.remaining == 1
        assert table.depth == 1

    def test_entry_retires_when_last_page_lands(self):
        table = make_table()
        cache = FakeCache()
        entry = table.begin(cache, 0, 3 * PAGE)
        assert entry.remaining == 3
        entry.page_done()
        entry.page_done()
        assert not entry.done
        assert table.covering(cache, PAGE) is entry
        entry.page_done()
        assert entry.done
        assert table.depth == 0
        assert table.covering(cache, PAGE) is None

    def test_pages_may_land_out_of_order(self):
        table = make_table()
        cache = FakeCache()
        entry = table.begin(cache, 0, 2 * PAGE)
        for _ in range(2):
            entry.page_done()
        assert entry.done
        assert table.stats["completed"] == 1

    def test_overlapping_begin_is_a_protocol_error(self):
        table = make_table()
        cache = FakeCache()
        table.begin(cache, 0, 4 * PAGE)
        with pytest.raises(InvalidOperation):
            table.begin(cache, 2 * PAGE, PAGE)

    def test_disjoint_extents_and_other_caches_coexist(self):
        table = make_table()
        cache, other = FakeCache("a"), FakeCache("b")
        first = table.begin(cache, 0, PAGE)
        second = table.begin(cache, 8 * PAGE, PAGE)
        third = table.begin(other, 0, PAGE)
        assert table.depth == 3
        assert table.covering(cache, 0) is first
        assert table.covering(cache, 8 * PAGE) is second
        assert table.covering(other, 0) is third


class TestJoining:
    def test_join_counts_coalesced_faulters(self):
        table = make_table()
        cache = FakeCache()
        entry = table.begin(cache, 0, 2 * PAGE)
        table.join(entry)
        table.join(entry)
        assert entry.joiners == 2
        assert table.stats["joined"] == 2

    def test_all_stubs_share_the_entry_condition(self):
        table = make_table()
        cache = FakeCache()
        entry = table.begin(cache, 0, 4 * PAGE)
        # One broadcast on the shared condition covers every sleeper,
        # whichever page of the run it faulted on.
        assert entry.condition is entry.condition


class TestRelease:
    def test_release_forgets_a_destroyed_cache(self):
        table = make_table()
        cache = FakeCache()
        entry = table.begin(cache, 0, PAGE)
        entry.page_done()
        table.release(cache.cache_id)
        assert table.covering(cache, 0) is None

    def test_depth_peak_tracks_high_water_mark(self):
        table = make_table()
        cache = FakeCache()
        first = table.begin(cache, 0, PAGE)
        second = table.begin(cache, 4 * PAGE, PAGE)
        first.page_done()
        second.page_done()
        assert table.depth == 0
        assert table.stats["depth_peak"] == 2
