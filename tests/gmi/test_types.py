"""GMI value types: protections, access modes, status records."""

import pytest

from repro.gmi.types import AccessMode, CacheStatistics, Protection, \
    RegionStatus
from repro.gmi.upcalls import SegmentProvider, ZeroFillProvider
from repro.hardware.mmu import Prot


class TestProtection:
    def test_hardware_projection(self):
        assert Protection.RW.to_hardware() == Prot.RW
        assert Protection.RX.to_hardware() == Prot.RX
        assert Protection.NONE.to_hardware() == Prot.NONE

    def test_system_bit_projected_to_pte(self):
        """The privilege level reaches the hardware PTE, so mapped
        pages trap user-mode access without a kernel check."""
        prot = Protection.READ | Protection.SYSTEM
        assert prot.to_hardware() == Prot.READ | Prot.SYSTEM

    def test_allows_write(self):
        assert Protection.RW.allows(write=True)
        assert not Protection.READ.allows(write=True)

    def test_allows_read_via_execute(self):
        """Execute implies fetch: an RX region is readable."""
        assert Protection.RX.allows(write=False)
        assert (Protection.EXECUTE).allows(write=False)

    def test_none_allows_nothing(self):
        assert not Protection.NONE.allows(write=False)
        assert not Protection.NONE.allows(write=True)

    def test_flag_composition(self):
        combined = Protection.READ | Protection.WRITE | Protection.SYSTEM
        assert combined & Protection.SYSTEM
        assert combined.to_hardware() == Prot.RW | Prot.SYSTEM


class TestAccessMode:
    def test_writable_property(self):
        assert AccessMode.WRITE.writable
        assert not AccessMode.READ.writable


class TestRegionStatus:
    def test_end_computed(self):
        status = RegionStatus(address=0x1000, size=0x2000,
                              protection=Protection.RW, cache=None,
                              offset=0, locked=False, resident_pages=0)
        assert status.end == 0x3000


class TestCacheStatistics:
    def test_defaults_zero(self):
        stats = CacheStatistics()
        assert stats.pull_ins == 0
        assert stats.push_outs == 0
        assert stats.copy_faults == 0


class TestProviderDefaults:
    def test_base_provider_abstract_methods(self):
        provider = SegmentProvider()
        with pytest.raises(NotImplementedError):
            provider.pull_in(None, 0, 0, AccessMode.READ)
        with pytest.raises(NotImplementedError):
            provider.push_out(None, 0, 0)
        # get_write_access defaults to a silent grant.
        provider.get_write_access(None, 0, 0)

    def test_zero_fill_provider_segment_ids_unique(self):
        provider = ZeroFillProvider()
        first = provider.segment_create(object())
        second = provider.segment_create(object())
        assert first != second
