"""The PR-6 API redesign surface: extents in, per-page lists out.

``Cache.resident_extents`` / ``Context.regions_overlapping`` are the
canonical forms; ``resident_offsets`` / ``find_region`` survive as thin
shims that answer identically but emit a :class:`DeprecationWarning`
(once per call site under the default filter, the PR-1 idiom).
"""

import warnings

import pytest

from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.pvm import PagedVirtualMemory
from repro.units import KB

PAGE = 8 * KB


@pytest.fixture
def vm():
    return PagedVirtualMemory(memory_size=64 * PAGE, page_size=PAGE)


@pytest.fixture
def cache(vm):
    return vm.cache_create(ZeroFillProvider())


@pytest.fixture
def ctx(vm):
    return vm.context_create("api")


class TestResidentExtents:
    def test_contiguous_pages_coalesce_to_one_run(self, cache):
        for index in range(4):
            cache.write(index * PAGE, b"x")
        assert cache.resident_extents() == [(0, 4 * PAGE)]

    def test_holes_split_runs(self, cache):
        cache.write(0, b"x")
        cache.write(3 * PAGE, b"x")
        cache.write(4 * PAGE, b"x")
        assert cache.resident_extents() == [(0, PAGE), (3 * PAGE, 2 * PAGE)]

    def test_empty_cache(self, cache):
        assert cache.resident_extents() == []

    def test_extents_track_eviction(self, vm, cache):
        for index in range(3):
            cache.write(index * PAGE, b"x")
        cache.invalidate(PAGE, PAGE)
        assert cache.resident_extents() == [(0, PAGE), (2 * PAGE, PAGE)]

    def test_agrees_with_deprecated_offsets(self, cache):
        for offset in (0, PAGE, 5 * PAGE):
            cache.write(offset, b"x")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            offsets = list(cache.resident_offsets())
        from_extents = [start + index * PAGE
                        for start, length in cache.resident_extents()
                        for index in range(length // PAGE)]
        assert offsets == from_extents


class TestRegionsOverlapping:
    def test_range_query(self, ctx, cache):
        low = ctx.region_create(0x10000, 2 * PAGE,
                                protection=Protection.RW, cache=cache)
        high = ctx.region_create(0x10000 + 4 * PAGE, PAGE,
                                 protection=Protection.RW, cache=cache)
        assert ctx.regions_overlapping(0x10000, PAGE) == [low]
        assert ctx.regions_overlapping(0x10000, 5 * PAGE) == [low, high]
        assert ctx.regions_overlapping(0x10000 + 2 * PAGE, PAGE) == []

    def test_boundaries_are_half_open(self, ctx, cache):
        region = ctx.region_create(0x10000, PAGE,
                                   protection=Protection.RW, cache=cache)
        assert ctx.regions_overlapping(0x10000 - 1, 1) == []
        assert ctx.regions_overlapping(0x10000 + PAGE - 1, 1) == [region]
        assert ctx.regions_overlapping(0x10000 + PAGE, 1) == []


class TestDeprecatedShims:
    def test_find_region_warns_and_answers(self, ctx, cache):
        region = ctx.region_create(0x10000, PAGE,
                                   protection=Protection.RW, cache=cache)
        with pytest.warns(DeprecationWarning, match="regions_overlapping"):
            assert ctx.find_region(0x10000) is region
        with pytest.warns(DeprecationWarning):
            assert ctx.find_region(0x10000 + PAGE) is None

    def test_resident_offsets_warns_and_answers(self, cache):
        cache.write(0, b"x")
        with pytest.warns(DeprecationWarning, match="resident_extents"):
            assert cache.resident_offsets() == [0]

    def test_canonical_forms_do_not_warn(self, ctx, cache):
        ctx.region_create(0x10000, PAGE,
                          protection=Protection.RW, cache=cache)
        cache.write(0, b"x")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ctx.regions_overlapping(0x10000, PAGE)
            ctx.get_region_list()
            cache.resident_extents()

    def test_warning_deduplicated_per_call_site(self, ctx, cache):
        """The default filter reports a shim call site once, so legacy
        loops don't flood the log."""
        ctx.region_create(0x10000, PAGE,
                          protection=Protection.RW, cache=cache)
        with warnings.catch_warnings(record=True) as caught:
            warnings.resetwarnings()    # default filter, clean registry
            for _ in range(5):
                ctx.find_region(0x10000)
        assert len([w for w in caught
                    if issubclass(w.category, DeprecationWarning)]) == 1
