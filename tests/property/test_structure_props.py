"""Property tests for the PVM's core data structures."""

from hypothesis import given, settings, strategies as st

from repro.pvm.fragments import FragmentList
from repro.units import (
    page_ceil, page_floor, page_index, page_offset, page_range,
    pages_spanned,
)

PAGE = 8 * 1024


class ShiftPayload:
    """Payload recording its absolute base, so splits are checkable."""

    def __init__(self, base):
        self.base = base

    def shifted(self, delta):
        return ShiftPayload(self.base + delta)


# A batch of candidate fragments: (offset, size) pairs.
fragment_batches = st.lists(
    st.tuples(st.integers(0, 1000), st.integers(1, 80)),
    min_size=0, max_size=25,
)
ranges = st.tuples(st.integers(0, 1000), st.integers(1, 200))


def build(batch):
    """Insert what fits; return (FragmentList, accepted list)."""
    fragments = FragmentList()
    accepted = []
    for offset, size in batch:
        if any(offset < o + s and o < offset + size for o, s in accepted):
            continue
        fragments.insert(offset, size, ShiftPayload(offset))
        accepted.append((offset, size))
    return fragments, accepted


class TestFragmentListProperties:
    @given(fragment_batches)
    @settings(max_examples=200, deadline=None)
    def test_sorted_and_disjoint(self, batch):
        fragments, accepted = build(batch)
        items = list(fragments)
        offsets = [fragment.offset for fragment in items]
        assert offsets == sorted(offsets)
        for left, right in zip(items, items[1:]):
            assert left.end <= right.offset

    @given(fragment_batches, st.integers(0, 1100))
    @settings(max_examples=200, deadline=None)
    def test_find_matches_naive_scan(self, batch, probe):
        fragments, accepted = build(batch)
        naive = next(
            ((o, s) for o, s in accepted if o <= probe < o + s), None)
        found = fragments.find(probe)
        if naive is None:
            assert found is None
        else:
            assert (found.offset, found.size) == naive

    @given(fragment_batches, ranges)
    @settings(max_examples=200, deadline=None)
    def test_remove_range_removes_exactly_the_range(self, batch, cut):
        fragments, accepted = build(batch)
        covered_before = {
            point
            for offset, size in accepted
            for point in range(offset, offset + size)
        }
        cut_offset, cut_size = cut
        fragments.remove_range(cut_offset, cut_size)
        covered_after = {
            point
            for fragment in fragments
            for point in range(fragment.offset, fragment.end)
        }
        cut_points = set(range(cut_offset, cut_offset + cut_size))
        assert covered_after == covered_before - cut_points

    @given(fragment_batches, ranges)
    @settings(max_examples=200, deadline=None)
    def test_split_payloads_keep_absolute_base(self, batch, cut):
        """After any removal, payload.base + 0 == fragment.offset's
        original absolute position: lookups through split fragments
        still target the right parent offsets."""
        fragments, _ = build(batch)
        fragments.remove_range(*cut)
        for fragment in fragments:
            assert fragment.payload.base == fragment.offset

    @given(fragment_batches, ranges)
    @settings(max_examples=100, deadline=None)
    def test_overlapping_agrees_with_find(self, batch, probe_range):
        fragments, _ = build(batch)
        offset, size = probe_range
        hits = fragments.overlapping(offset, size)
        for fragment in fragments:
            expected = fragment.overlaps(offset, size)
            assert (fragment in hits) == expected


class TestPageArithmetic:
    @given(st.integers(0, 2**48), st.sampled_from([4096, 8192, 16384]))
    @settings(max_examples=300, deadline=None)
    def test_floor_ceil_bracket(self, offset, page):
        assert page_floor(offset, page) <= offset <= page_ceil(offset, page)
        assert page_floor(offset, page) % page == 0
        assert page_ceil(offset, page) % page == 0
        assert page_ceil(offset, page) - page_floor(offset, page) in (0, page)

    @given(st.integers(0, 2**48), st.sampled_from([4096, 8192]))
    @settings(max_examples=300, deadline=None)
    def test_index_offset_decompose(self, offset, page):
        assert page_index(offset, page) * page + page_offset(offset, page) \
            == offset

    @given(st.integers(0, 2**20), st.integers(0, 2**16),
           st.sampled_from([4096, 8192]))
    @settings(max_examples=300, deadline=None)
    def test_page_range_covers_span(self, offset, size, page):
        starts = list(page_range(offset, size, page))
        assert len(starts) == pages_spanned(offset, size, page)
        if size > 0:
            assert starts[0] == page_floor(offset, page)
            assert starts[-1] == page_floor(offset + size - 1, page)
            for left, right in zip(starts, starts[1:]):
                assert right - left == page
        else:
            assert starts == []
