"""Model-based test of the segment manager's reference counting and
retention (bind/release/temporary lifecycle, section 5.1.2/5.1.3)."""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, rule,
)

from repro.errors import InvalidOperation
from repro.nucleus import Nucleus
from repro.segments import MemoryMapper
from repro.units import KB, MB

PAGE = 8 * KB
SEGMENTS = 5
MAX_CACHED = 3

segment_ids = st.integers(0, SEGMENTS - 1)


class SegmentManagerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.nucleus = Nucleus(memory_size=4 * MB,
                               max_cached_segments=MAX_CACHED)
        self.mapper = MemoryMapper()
        self.nucleus.register_mapper(self.mapper)
        self.caps = [self.mapper.register(bytes([i + 1]) * 64)
                     for i in range(SEGMENTS)]
        self.refcounts = {i: 0 for i in range(SEGMENTS)}
        self.bound_caches = {}

    @property
    def sm(self):
        return self.nucleus.segment_manager

    @rule(segment=segment_ids)
    def bind(self, segment):
        cache = self.sm.bind(self.caps[segment])
        if self.refcounts[segment] > 0:
            # Same segment in use: must be the same cache.
            assert cache is self.bound_caches[segment]
        self.bound_caches[segment] = cache
        self.refcounts[segment] += 1

    @rule(segment=segment_ids)
    def release(self, segment):
        if self.refcounts[segment] == 0:
            with pytest.raises(InvalidOperation):
                self.sm.release(self.caps[segment])
            return
        self.sm.release(self.caps[segment])
        self.refcounts[segment] -= 1

    @rule(segment=segment_ids)
    def read_through(self, segment):
        if self.refcounts[segment] == 0:
            return
        cache = self.bound_caches[segment]
        assert cache.read(0, 4) == bytes([segment + 1]) * 4

    @rule()
    def drop_retained(self):
        self.sm.drop_retained()

    @rule(segment=segment_ids)
    def rebind_after_idle_sees_same_bytes(self, segment):
        cache = self.sm.bind(self.caps[segment])
        try:
            assert cache.read(0, 4) == bytes([segment + 1]) * 4
        finally:
            self.sm.release(self.caps[segment])
            if self.refcounts[segment] > 0:
                self.bound_caches[segment] = cache

    @invariant()
    def bound_caches_alive(self):
        if not hasattr(self, "nucleus"):
            return
        for segment, count in self.refcounts.items():
            if count > 0:
                assert not self.bound_caches[segment].destroyed

    @invariant()
    def retention_bounded(self):
        if hasattr(self, "nucleus"):
            assert self.sm.retained_count <= MAX_CACHED

    @invariant()
    def stats_consistent(self):
        if hasattr(self, "nucleus"):
            # Binds that found the segment already in use are neither
            # warm hits nor cold misses.
            stats = self.sm.stats
            assert stats["binds"] >= \
                stats["warm_hits"] + stats["cold_misses"]


TestSegmentManagerModel = SegmentManagerMachine.TestCase
TestSegmentManagerModel.settings = settings(
    max_examples=50, stateful_step_count=40, deadline=None)
