"""Property tests for the simulated hardware: MMU ports against a
dictionary model, and the frame allocator's conservation laws."""

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, rule,
)

from repro.errors import InvalidOperation, OutOfFrames, PageFault, \
    ProtectionViolation
from repro.hardware.inverted_mmu import InvertedMMU
from repro.hardware.paged_mmu import PagedMMU
from repro.hardware.mmu import Prot
from repro.hardware.physmem import PhysicalMemory

PAGE = 8 * 1024
VPNS = 32
FRAMES = 16

prots = st.sampled_from([Prot.READ, Prot.RW, Prot.RX, Prot.RWX])
vpns = st.integers(0, VPNS - 1)
frames = st.integers(0, FRAMES - 1)
mmu_classes = st.sampled_from([PagedMMU, InvertedMMU])


class MmuMachine(RuleBasedStateMachine):
    """Both MMU ports vs a dict model, in lockstep."""

    @initialize(mmu_class=mmu_classes)
    def setup(self, mmu_class):
        self.mmu = mmu_class(PAGE)
        self.spaces = [self.mmu.create_space() for _ in range(2)]
        self.model = {space: {} for space in self.spaces}

    @rule(which=st.integers(0, 1), vpn=vpns, frame=frames, prot=prots)
    def map_page(self, which, vpn, frame, prot):
        space = self.spaces[which]
        self.mmu.map(space, vpn * PAGE, frame, prot)
        self.model[space][vpn] = (frame, prot)

    @rule(which=st.integers(0, 1), vpn=vpns)
    def unmap_page(self, which, vpn):
        space = self.spaces[which]
        existed = self.mmu.unmap(space, vpn * PAGE)
        assert existed == (vpn in self.model[space])
        self.model[space].pop(vpn, None)

    @rule(which=st.integers(0, 1), vpn=vpns, prot=prots)
    def protect_page(self, which, vpn, prot):
        space = self.spaces[which]
        if vpn in self.model[space]:
            self.mmu.protect(space, vpn * PAGE, prot)
            frame, _ = self.model[space][vpn]
            self.model[space][vpn] = (frame, prot)
        else:
            with pytest.raises(InvalidOperation):
                self.mmu.protect(space, vpn * PAGE, prot)

    @rule(which=st.integers(0, 1), vpn=vpns,
          offset=st.integers(0, PAGE - 1), write=st.booleans())
    def translate(self, which, vpn, offset, write):
        space = self.spaces[which]
        vaddr = vpn * PAGE + offset
        entry = self.model[space].get(vpn)
        if entry is None:
            with pytest.raises(PageFault):
                self.mmu.translate(space, vaddr, write)
        elif not entry[1].allows(write):
            with pytest.raises(ProtectionViolation):
                self.mmu.translate(space, vaddr, write)
        else:
            assert self.mmu.translate(space, vaddr, write) == \
                entry[0] * PAGE + offset

    @invariant()
    def listings_agree(self):
        if not hasattr(self, "mmu"):
            return
        for space in self.spaces:
            listed = {vpn: (m.frame, m.prot)
                      for vpn, m in self.mmu.mapped_pages(space)}
            assert listed == self.model[space]


TestMmuModel = MmuMachine.TestCase
TestMmuModel.settings = settings(max_examples=50, stateful_step_count=50,
                                 deadline=None)


class TestFrameAllocatorProperties:
    @given(st.lists(st.booleans(), max_size=100))
    @settings(max_examples=200, deadline=None)
    def test_conservation(self, script):
        """allocate/free in any order: counts always conserve, frames
        never double-allocated."""
        memory = PhysicalMemory(size=FRAMES * PAGE, page_size=PAGE)
        held = []
        for allocate in script:
            if allocate:
                try:
                    frame = memory.allocate_frame()
                except OutOfFrames:
                    assert len(held) == FRAMES
                    continue
                assert frame not in held
                held.append(frame)
            elif held:
                memory.free_frame(held.pop())
            assert memory.allocated_frames == len(held)
            assert memory.free_frames == FRAMES - len(held)

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_data_isolation_between_frames(self, data):
        """Writing one frame never disturbs another."""
        memory = PhysicalMemory(size=FRAMES * PAGE, page_size=PAGE)
        a = memory.allocate_frame(zero=True)
        b = memory.allocate_frame(zero=True)
        payload = data.draw(st.binary(min_size=1, max_size=64))
        offset = data.draw(st.integers(0, PAGE - len(payload)))
        memory.write(memory.frame_address(a) + offset, payload)
        assert memory.read_frame(b) == bytes(PAGE)
        assert memory.read_frame(a)[offset:offset + len(payload)] == payload
