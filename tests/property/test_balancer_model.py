"""Model-based property test of the working-set balancer's fairness.

A :class:`hypothesis` state machine drives random multi-tenant paging
traffic — spaces fault in pages, exit, and balancer ticks interleave
arbitrarily — against the grant invariants the pressure-policy layer
promises:

* ``sum(grants over live spaces) <= global_budget`` after every tick
  (adoption skims incumbents, the proportional split rounds down);
* no live space's grant ever sits below the configured floor;
* aggregate residency never exceeds the budget (pinning is not
  exercised here, so the cap is exact after every insert);
* the arbiter's per-space charge ledger always agrees with the
  residency index's attributed pages.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, rule,
    run_state_machine_as_test,
)

from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.pressure import (
    AdmissionController, BalancerDaemon, FrameArbiter, WorkingSetEstimator,
)
from repro.pvm import PagedVirtualMemory
from repro.units import KB

PAGE = 8 * KB
BASE = 0x0100_0000
MAX_SPACES = 5
SPACE_PAGES = 12
FLOOR = 2
BUDGET = 24                     # >= MAX_SPACES * FLOOR: floors coverable
RAM_FRAMES = 64                 # pressure comes from the budget

slot_ids = st.integers(min_value=0, max_value=MAX_SPACES - 1)
page_indexes = st.integers(min_value=0, max_value=SPACE_PAGES - 1)


class BalancerMachine(RuleBasedStateMachine):
    """Random tenant churn vs the grant fairness invariants."""

    @initialize()
    def setup(self):
        self.vm = PagedVirtualMemory(
            memory_size=RAM_FRAMES * PAGE, page_size=PAGE,
            arbiter=FrameArbiter(global_budget=BUDGET, floor_pages=FLOOR,
                                 ws=WorkingSetEstimator(),
                                 qos=AdmissionController()))
        self.daemon = BalancerDaemon(self.vm, full_threshold=0.0,
                                     refault_threshold=4)
        self.contexts = {}
        self.serial = 0

    def _spawn(self, slot):
        self.serial += 1
        heap = self.vm.cache_create(ZeroFillProvider(),
                                    name=f"t{self.serial}.heap")
        context = self.vm.context_create(f"t{self.serial}")
        context.region_create(BASE, SPACE_PAGES * PAGE,
                              protection=Protection.RW, cache=heap,
                              offset=0)
        self.contexts[slot] = (context, heap)

    # -- traffic ---------------------------------------------------------------

    @rule(slot=slot_ids, page=page_indexes)
    def fault(self, slot, page):
        if slot not in self.contexts:
            self._spawn(slot)
        context, _ = self.contexts[slot]
        context.switch()
        self.vm.user_write(context, BASE + page * PAGE, b"\x01")

    @rule(slot=slot_ids, first=page_indexes,
          count=st.integers(min_value=1, max_value=SPACE_PAGES))
    def fault_run(self, slot, first, count):
        for index in range(count):
            self.fault(slot, (first + index) % SPACE_PAGES)

    @rule(slot=slot_ids)
    def exit_space(self, slot):
        entry = self.contexts.pop(slot, None)
        if entry is not None:
            context, heap = entry
            self.vm.context_destroy(context)
            self.vm.cache_destroy(heap)

    @rule()
    def tick(self):
        self.daemon.tick()

    @rule(ms=st.floats(min_value=1.0, max_value=50.0))
    def idle(self, ms):
        self.vm.clock.advance(ms)

    # -- invariants -------------------------------------------------------------

    @invariant()
    def grants_fit_the_budget(self):
        if not hasattr(self, "vm"):
            return
        arbiter = self.vm.arbiter
        live = {context.space for context, _ in self.contexts.values()}
        live_total = sum(grant for space, grant in arbiter.grants.items()
                         if space in live)
        assert live_total <= BUDGET, \
            f"live grants {live_total} exceed budget {BUDGET}"

    @invariant()
    def no_live_space_below_the_floor(self):
        if not hasattr(self, "vm"):
            return
        arbiter = self.vm.arbiter
        for context, _ in self.contexts.values():
            assert arbiter.grant_of(context.space) >= FLOOR, \
                f"space {context.space} granted below the floor"

    @invariant()
    def residency_respects_the_budget(self):
        if not hasattr(self, "vm"):
            return
        assert len(self.vm.residency) <= BUDGET

    @invariant()
    def charges_agree_with_residency(self):
        if not hasattr(self, "vm"):
            return
        arbiter = self.vm.arbiter
        by_space = {}
        for table in self.vm.residency._pages.values():
            for page in table.values():
                key = page.charged_space
                by_space[key] = by_space.get(key, 0) + 1
        assert by_space == dict(arbiter.charged)


def test_balancer_fairness_machine():
    run_state_machine_as_test(
        BalancerMachine,
        settings=settings(max_examples=40, stateful_step_count=30,
                          deadline=None))
