"""Model-based test of address-space management (Table 2).

Random region create / split / protect / destroy sequences against a
model of the address space as a set of disjoint intervals, with
mapped-access spot checks (reads must hit exactly the bytes the model
says a region exposes, and miss outside every region).
"""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, precondition, rule,
)

from repro.errors import AccessViolation, InvalidOperation, \
    SegmentationFault
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.pvm import PagedVirtualMemory
from repro.units import KB

PAGE = 8 * KB
SLOTS = 12                 # address space modelled as SLOTS page slots
BASE = 0x100000

slot_indexes = st.integers(0, SLOTS - 1)
sizes_pages = st.integers(1, 4)
protections = st.sampled_from([Protection.RW, Protection.READ])


class RegionMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.vm = PagedVirtualMemory(memory_size=64 * PAGE)
        self.context = self.vm.context_create("regions")
        self.cache = self.vm.cache_create(ZeroFillProvider())
        for slot in range(SLOTS):
            self.cache.write(slot * PAGE, bytes([slot + 1]) * 8)
        #: model: slot -> (region object, protection) or None
        self.slots = [None] * SLOTS

    def _address(self, slot):
        return BASE + slot * PAGE

    @rule(slot=slot_indexes, pages=sizes_pages, prot=protections)
    def create_region(self, slot, pages, prot):
        pages = min(pages, SLOTS - slot)
        free = all(self.slots[s] is None for s in range(slot, slot + pages))
        if not free:
            with pytest.raises(InvalidOperation):
                self.context.region_create(self._address(slot), pages * PAGE,
                                           protection=prot, cache=self.cache,
                                           offset=slot * PAGE)
            return
        region = self.context.region_create(self._address(slot), pages * PAGE,
                                            protection=prot, cache=self.cache,
                                            offset=slot * PAGE)
        for s in range(slot, slot + pages):
            self.slots[s] = (region, prot)

    @rule(slot=slot_indexes)
    def destroy_region(self, slot):
        entry = self.slots[slot]
        if entry is None:
            return
        region, _ = entry
        region.destroy()
        self.slots = [
            None if e is not None and e[0] is region else e
            for e in self.slots
        ]

    @rule(slot=slot_indexes, at=st.integers(1, 3))
    def split_region(self, slot, at):
        entry = self.slots[slot]
        if entry is None:
            return
        region, prot = entry
        if at * PAGE >= region.size:
            return
        upper = region.split(at * PAGE)
        base_slot = (region.address - BASE) // PAGE
        for s in range(SLOTS):
            existing = self.slots[s]
            if existing is not None and existing[0] is region \
                    and s >= base_slot + at:
                self.slots[s] = (upper, prot)

    @rule(slot=slot_indexes, prot=protections)
    def set_protection(self, slot, prot):
        entry = self.slots[slot]
        if entry is None:
            return
        region, _ = entry
        region.set_protection(prot)
        self.slots = [
            (e[0], prot) if e is not None and e[0] is region else e
            for e in self.slots
        ]

    @rule(slot=slot_indexes)
    def probe_read(self, slot):
        entry = self.slots[slot]
        address = self._address(slot)
        if entry is None:
            with pytest.raises(SegmentationFault):
                self.vm.user_read(self.context, address, 1)
        else:
            # Each slot maps segment offset == slot * PAGE.
            assert self.vm.user_read(self.context, address, 1) == \
                bytes([slot + 1])

    @rule(slot=slot_indexes)
    def probe_write(self, slot):
        entry = self.slots[slot]
        address = self._address(slot)
        if entry is None:
            with pytest.raises(SegmentationFault):
                self.vm.user_write(self.context, address + 100, b"x")
        elif not entry[1] & Protection.WRITE:
            with pytest.raises(AccessViolation):
                self.vm.user_write(self.context, address + 100, b"x")
        else:
            self.vm.user_write(self.context, address + 100, b"x")

    @invariant()
    def region_list_matches_model(self):
        if not hasattr(self, "context"):
            return
        listed = self.context.get_region_list()
        # Sorted, non-overlapping.
        addresses = [region.address for region in listed]
        assert addresses == sorted(addresses)
        for left, right in zip(listed, listed[1:]):
            assert left.end <= right.address
        # Coverage agrees with the model slot-for-slot.
        covered = set()
        for region in listed:
            start = (region.address - BASE) // PAGE
            covered.update(range(start, start + region.size // PAGE))
        modelled = {s for s in range(SLOTS) if self.slots[s] is not None}
        assert covered == modelled


TestRegionModel = RegionMachine.TestCase
TestRegionModel.settings = settings(max_examples=50,
                                    stateful_step_count=40, deadline=None)
