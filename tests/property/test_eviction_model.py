"""Model-based property test of the unified eviction engine.

A :class:`hypothesis` state machine drives random interleavings of
writes, reads, pins, unpins, reclaims, policy swaps and budget changes
against a PVM, checking the eviction invariants after every step:

* pinned pages are never evicted;
* dirty pages are written back before their frame is reclaimed (no
  byte is ever lost — checked against a reference model);
* the resident count never exceeds ``budget + pinned`` while a budget
  is set;
* residency index, per-cache page tables and the policy queue agree.
"""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, rule,
    run_state_machine_as_test,
)

from repro.cache import ClockPolicy, FifoPolicy, LruPolicy
from repro.gmi.upcalls import ZeroFillProvider
from repro.pvm import PagedVirtualMemory
from repro.units import KB

PAGE = 8 * KB
SEGMENT_PAGES = 8
NUM_CACHES = 3
RAM_FRAMES = 64                       # pressure comes from budgets

cache_ids = st.integers(min_value=0, max_value=NUM_CACHES - 1)
page_indexes = st.integers(min_value=0, max_value=SEGMENT_PAGES - 1)
byte_values = st.integers(min_value=1, max_value=255)
policy_makers = st.sampled_from([ClockPolicy, FifoPolicy, LruPolicy])


class EvictionMachine(RuleBasedStateMachine):
    """Random paging traffic vs the eviction invariants."""

    @initialize()
    def setup(self):
        self.vm = PagedVirtualMemory(memory_size=RAM_FRAMES * PAGE,
                                     page_size=PAGE)
        self.caches = {}
        self.model = {}
        self.pins = {}                # (cache id, page index) -> count
        for index in range(NUM_CACHES):
            self.caches[index] = self.vm.cache_create(
                ZeroFillProvider(), name=f"e{index}")
            self.model[index] = bytearray(SEGMENT_PAGES * PAGE)

    # -- traffic ---------------------------------------------------------------

    @rule(cache=cache_ids, page=page_indexes, value=byte_values)
    def write(self, cache, page, value):
        data = bytes([value]) * 16
        self.caches[cache].write(page * PAGE, data)
        self.model[cache][page * PAGE:page * PAGE + 16] = data

    @rule(cache=cache_ids, page=page_indexes)
    def read(self, cache, page):
        got = self.caches[cache].read(page * PAGE, 32)
        assert got == bytes(self.model[cache][page * PAGE:
                                              page * PAGE + 32])

    @rule(cache=cache_ids, page=page_indexes)
    def pin(self, cache, page):
        self.caches[cache].lock_in_memory(page * PAGE, PAGE)
        key = (cache, page)
        self.pins[key] = self.pins.get(key, 0) + 1

    @rule(cache=cache_ids, page=page_indexes)
    def unpin(self, cache, page):
        key = (cache, page)
        if self.pins.get(key):
            self.caches[cache].unlock(page * PAGE, PAGE)
            self.pins[key] -= 1

    @rule(target_pages=st.integers(min_value=1, max_value=8))
    def reclaim(self, target_pages):
        self.vm.reclaim_frames(target_pages)

    @rule(cache=cache_ids)
    def flush(self, cache):
        self.caches[cache].flush(0, SEGMENT_PAGES * PAGE)

    @rule(make_policy=policy_makers)
    def swap_policy(self, make_policy):
        self.vm.policy = make_policy()

    @rule(budget=st.one_of(st.none(),
                           st.integers(min_value=4, max_value=16)))
    def set_budget(self, budget):
        self.vm.cache_engine.budget = budget
        if budget is not None:
            excess = len(self.vm.residency) - budget
            if excess > 0:
                self.vm.cache_engine.reclaim(excess)

    # -- invariants -------------------------------------------------------------

    @invariant()
    def pinned_pages_stay_resident(self):
        if not hasattr(self, "vm"):
            return
        for (cache, page), count in self.pins.items():
            if count > 0:
                resident = self.caches[cache].resident_page(page * PAGE)
                assert resident is not None, \
                    f"pinned page {page} of cache {cache} was evicted"
                assert resident.pin_count >= count

    @invariant()
    def no_bytes_lost(self):
        # Dirty evictions must have written back first: every byte of
        # the model must be recoverable.  (Checked sparsely — full
        # sweeps make the machine quadratic.)
        if not hasattr(self, "vm"):
            return
        for index, cache in self.caches.items():
            assert cache.read(0, 16) == bytes(self.model[index][:16])

    @invariant()
    def budget_respected(self):
        if not hasattr(self, "vm"):
            return
        budget = self.vm.cache_engine.budget
        if budget is None:
            return
        pinned = sum(1 for table in [c.pages for c in self.caches.values()]
                     for page in table.values() if page.pinned)
        assert len(self.vm.residency) <= budget + pinned + 1, \
            (f"resident {len(self.vm.residency)} exceeds budget {budget} "
             f"+ {pinned} pinned")

    @invariant()
    def views_agree(self):
        if not hasattr(self, "vm"):
            return
        total = sum(len(cache.pages) for cache in self.vm.caches())
        assert len(self.vm.residency) == total
        assert len(self.vm.policy) == total


class TestEvictionModel:
    settings = settings(max_examples=40, stateful_step_count=30,
                        deadline=None)

    def test_invariants_hold(self):
        run_state_machine_as_test(EvictionMachine, settings=self.settings)
