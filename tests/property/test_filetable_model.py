"""Model-based test of the FileTable: descriptor semantics vs a plain
(bytes, position) model, including coherence with a live mmap."""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, rule,
)

from repro.mix.files import FileTable
from repro.nucleus import Nucleus
from repro.segments import MemoryMapper
from repro.units import KB, MB

PAGE = 8 * KB
FILE_SPAN = 2 * PAGE          # mapped window

sizes = st.integers(0, 300)
offsets = st.integers(0, FILE_SPAN - 64)
payloads = st.binary(min_size=1, max_size=64)


class FileMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.nucleus = Nucleus(memory_size=4 * MB)
        self.mapper = MemoryMapper()
        self.nucleus.register_mapper(self.mapper)
        self.files = FileTable(self.nucleus)
        capability = self.mapper.register(b"")
        self.fd = self.files.open(capability)
        self.actor = self.nucleus.create_actor()
        self.region = self.files.mmap(self.fd, self.actor,
                                      length=FILE_SPAN, address=0x400000)
        # Model: growable content buffer + a separate descriptor-
        # visible size (mapped stores change content but, like real
        # mmap past EOF, never move the fstat size).  Writes may land
        # past the mapped window — the file grows, the window doesn't.
        self.content = bytearray(FILE_SPAN)
        self.size = 0
        self.position = 0

    def _ensure(self, end):
        if end > len(self.content):
            self.content.extend(bytes(end - len(self.content)))

    @rule(payload=payloads)
    def write(self, payload):
        written = self.files.write(self.fd, payload)
        assert written == len(payload)
        end = self.position + len(payload)
        self._ensure(end)
        self.content[self.position:end] = payload
        self.size = max(self.size, end)
        self.position = end

    @rule(count=sizes)
    def read(self, count):
        clamped = max(0, min(count, self.size - self.position))
        self._ensure(self.position + clamped)
        expected = bytes(self.content[self.position:self.position + clamped])
        actual = self.files.read(self.fd, count)
        assert actual == expected
        self.position += clamped

    @rule(offset=offsets, payload=payloads)
    def pwrite(self, offset, payload):
        self.files.pwrite(self.fd, payload, offset)
        self._ensure(offset + len(payload))
        self.content[offset:offset + len(payload)] = payload
        self.size = max(self.size, offset + len(payload))

    @rule(offset=offsets, count=sizes)
    def pread(self, offset, count):
        clamped = max(0, min(count, self.size - offset))
        self._ensure(offset + clamped)
        expected = bytes(self.content[offset:offset + clamped])
        assert self.files.pread(self.fd, count, offset) == expected

    @rule(offset=st.integers(0, FILE_SPAN), whence=st.sampled_from([0, 1, 2]))
    def lseek(self, offset, whence):
        if whence == 0:
            target = offset
        elif whence == 1:
            target = self.position + offset
        else:
            target = self.size + offset
        assert self.files.lseek(self.fd, offset, whence) == target
        self.position = target

    @rule(offset=offsets, payload=payloads)
    def mapped_store(self, offset, payload):
        self.actor.write(0x400000 + offset, payload)
        self.content[offset:offset + len(payload)] = payload

    @rule(offset=offsets, count=st.integers(1, 64))
    def mapped_load_matches(self, offset, count):
        expected = bytes(self.content[offset:offset + count])
        assert self.actor.read(0x400000 + offset, count) == expected

    @invariant()
    def descriptor_size_matches_model(self):
        if hasattr(self, "files"):
            assert self.files.fstat_size(self.fd) == self.size


TestFileModel = FileMachine.TestCase
TestFileModel.settings = settings(max_examples=50, stateful_step_count=40,
                                  deadline=None)
