"""Property test: vectorized replay is observationally scalar replay.

Twin nuclei replay the same random trace — one access at a time
through the ordinary bus, and in bulk through
:class:`repro.hardware.vbus.VectorBus`.  The memory is small enough
that long traces evict (so the fallback path, frame reuse and the
classification-cache invalidation all get exercised) and the TLB is
tiny (so hit runs straddle fills and evictions).  Afterwards *every*
observable must be bit-identical: the virtual clock, all mechanism
counters (the ``vbus.*`` throughput counters are the one permitted
addition), physical RAM down to the byte, and the TLB's entry set in
LRU order.  Both engines — numpy and the stdlib fallback — must pass
the same property; this test is tier 1 and runs with and without
numpy in CI (``REPRO_NO_NUMPY=1``).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.costmodel import SUN360_PAGE, chorus_nucleus
from repro.fastpath import numpy_available
from repro.hardware.vbus import VectorBus
from repro.workloads.tracecomp import compile_trace

PAGE = SUN360_PAGE
PAGES = 24
#: 16 frames for a 24-page working set: long traces must evict.
MEMORY = 16 * PAGE
BASE = 0x40000

traces = st.lists(
    st.tuples(st.integers(min_value=0, max_value=PAGES - 1),
              st.booleans()),
    min_size=1, max_size=80)

ENGINES = [pytest.param(False, id="python")]
if numpy_available():
    ENGINES.insert(0, pytest.param(True, id="numpy"))


def run(trace, vectorized, use_numpy=False):
    nucleus = chorus_nucleus(memory_size=MEMORY, tlb_entries=8)
    vm = nucleus.vm
    actor = nucleus.create_actor("parity")
    nucleus.rgn_allocate(actor, PAGES * PAGE, address=BASE)
    if vectorized:
        compiled = compile_trace(trace, use_numpy=use_numpy)
        vbus = VectorBus(vm.bus, use_numpy=use_numpy)
        done = vbus.replay(actor.context.space, compiled.pages,
                           compiled.writes, base_vpn=BASE // PAGE)
        assert done == len(trace)
    else:
        for page, write in trace:
            vaddr = BASE + page * PAGE
            if write:
                actor.write(vaddr, b"\x01")
            else:
                actor.read(vaddr, 1)
    counters = {
        key: value
        for key, value in vm.metrics_snapshot()["counters"].items()
        if not key.startswith("vbus.")
    }
    tlb = vm.bus.mmu.tlb
    return (vm.clock.now(), counters, bytes(vm.bus.memory._ram),
            list(tlb._entries.items()))


@pytest.mark.parametrize("use_numpy", ENGINES)
@settings(max_examples=60, deadline=None)
@given(trace=traces)
def test_vectorized_replay_is_scalar_replay(use_numpy, trace):
    scalar = run(trace, vectorized=False)
    vector = run(trace, vectorized=True, use_numpy=use_numpy)
    assert vector[0] == scalar[0], "virtual clock diverged"
    assert vector[1] == scalar[1], "mechanism counters diverged"
    assert vector[2] == scalar[2], "physical memory diverged"
    assert vector[3] == scalar[3], "TLB state or LRU order diverged"
