"""Extent representations vs flat per-page reference models.

PR 6 moved the address-space representation from per-page to extent
form: the context's region map became an interval map, and the paged
MMU's tables became run-length translation runs.  These state machines
drive random map/unmap/split/protect/destroy interleavings against
trivially-correct flat models (a dict per page, a dict per region) and
check that every query — point lookup, range query, size, table and
run counts — agrees after every step.  If run splicing, coalescing,
boundary trimming or the O(1) counters ever drift from the per-page
truth, these machines find the sequence.
"""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, precondition, rule,
)

from repro.errors import InvalidOperation
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.hardware.paged_mmu import TABLE_BITS, PagedMMU
from repro.hardware.mmu import Prot
from repro.pvm import PagedVirtualMemory
from repro.units import KB

PAGE = 4 * KB

# -- page table vs flat dict ------------------------------------------------------

#: Small vpn universe so runs split, merge and collide often.
VPNS = 48
FRAMES = 64

vpns = st.integers(0, VPNS - 1)
counts = st.integers(1, 12)
frames = st.integers(0, FRAMES - 1)
prots = st.sampled_from([Prot.READ, Prot.READ | Prot.WRITE])


def _model_runs(model):
    """Maximal (vpn, frame, prot)-coalesced runs of a flat dict."""
    runs = 0
    previous = None
    for vpn in sorted(model):
        frame, prot = model[vpn]
        if previous is None or vpn != previous[0] + 1 \
                or frame != previous[1] + 1 or prot != previous[2]:
            runs += 1
        previous = (vpn, frame, prot)
    return runs


class PageTableMachine(RuleBasedStateMachine):
    """Run-length page table vs one dict entry per page."""

    @initialize()
    def setup(self):
        self.mmu = PagedMMU(PAGE)
        self.space = self.mmu.create_space()
        self.model = {}

    @rule(vpn=vpns, frame=frames, prot=prots)
    def map_one(self, vpn, frame, prot):
        self.mmu.map(self.space, vpn * PAGE, frame, prot)
        self.model[vpn] = (frame, prot)

    @rule(vpn=vpns, count=counts, frame=frames, prot=prots)
    def map_run(self, vpn, count, frame, prot):
        self.mmu.map_run(self.space, vpn * PAGE, count, frame, prot)
        for index in range(count):
            self.model[vpn + index] = (frame + index, prot)

    @rule(vpn=vpns, count=counts, frame=frames, prot=prots)
    def map_batch(self, vpn, count, frame, prot):
        self.mmu.map_batch(self.space, [
            (((vpn + 2 * index) % VPNS) * PAGE, frame, prot)
            for index in range(count)])
        for index in range(count):
            self.model[(vpn + 2 * index) % VPNS] = (frame, prot)

    @rule(vpn=vpns)
    def unmap_one(self, vpn):
        existed = self.mmu.unmap(self.space, vpn * PAGE)
        assert existed == (self.model.pop(vpn, None) is not None)

    @rule(vpn=vpns, count=counts)
    def unmap_range(self, vpn, count):
        dropped = self.mmu.unmap_range(self.space, vpn * PAGE, count * PAGE)
        expected = sum(1 for index in range(count)
                       if self.model.pop(vpn + index, None) is not None)
        assert dropped == expected

    @rule(vpn=vpns, count=counts)
    def unmap_batch(self, vpn, count):
        addrs = [((vpn + 3 * index) % VPNS) * PAGE for index in range(count)]
        dropped = self.mmu.unmap_batch(self.space, addrs)
        expected = sum(1 for addr in {a // PAGE for a in addrs}
                       if self.model.pop(addr, None) is not None)
        assert dropped == expected

    @rule(vpn=vpns)
    def protect_one(self, vpn):
        if vpn in self.model:
            self.mmu.protect(self.space, vpn * PAGE, Prot.READ)
            frame, _ = self.model[vpn]
            self.model[vpn] = (frame, Prot.READ)
        else:
            with pytest.raises(InvalidOperation):
                self.mmu.protect(self.space, vpn * PAGE, Prot.READ)

    @rule(vpn=vpns, count=counts, prot=prots)
    def protect_range(self, vpn, count, prot):
        hole = next((index for index in range(count)
                     if vpn + index not in self.model), None)
        if hole is None:
            self.mmu.protect_range(self.space, vpn * PAGE, count, prot)
            changed = count
        else:
            with pytest.raises(InvalidOperation):
                self.mmu.protect_range(self.space, vpn * PAGE, count, prot)
            # The range form re-protects the prefix below the hole,
            # exactly as the per-page loop would leave it.
            changed = hole
        for index in range(changed):
            frame, _ = self.model[vpn + index]
            self.model[vpn + index] = (frame, prot)

    @invariant()
    def lookups_agree(self):
        for vpn in range(VPNS):
            mapping = self.mmu.lookup(self.space, vpn * PAGE)
            expected = self.model.get(vpn)
            if expected is None:
                assert mapping is None
            else:
                assert mapping is not None
                assert (mapping.frame, mapping.prot) == expected

    @invariant()
    def counters_agree(self):
        scan = sum(1 for _ in self.mmu._iter_space(self.space))
        assert self.mmu._space_size(self.space) == len(self.model) == scan
        assert self.mmu.run_count(self.space) == _model_runs(self.model)
        assert self.mmu.table_count(self.space) == \
            len({vpn >> TABLE_BITS for vpn in self.model})


TestPageTableModel = PageTableMachine.TestCase
TestPageTableModel.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)


# -- region map vs flat region set -------------------------------------------------

SLOTS = 16
BASE = 0x200000

slots = st.integers(0, SLOTS - 1)
spans = st.integers(1, 5)


class RegionMapMachine(RuleBasedStateMachine):
    """Interval-map region index vs a flat {region: (start, end)} dict."""

    @initialize()
    def setup(self):
        self.vm = PagedVirtualMemory(memory_size=64 * PAGE, page_size=PAGE)
        self.context = self.vm.context_create("extents")
        self.cache = self.vm.cache_create(ZeroFillProvider())
        self.model = {}

    def _addr(self, slot):
        return BASE + slot * PAGE

    def _free(self, slot, pages):
        lo, hi = self._addr(slot), self._addr(slot + pages)
        return not any(
            lo < end and start < hi for start, end in self.model.values())

    @precondition(lambda self: len(self.model) < SLOTS)
    @rule(slot=slots, pages=spans)
    def create(self, slot, pages):
        if self._free(slot, pages):
            region = self.context.region_create(
                self._addr(slot), pages * PAGE,
                protection=Protection.RW, cache=self.cache, offset=0)
            self.model[region] = (region.address, region.end)
        else:
            with pytest.raises(InvalidOperation):
                self.context.region_create(
                    self._addr(slot), pages * PAGE,
                    protection=Protection.RW, cache=self.cache, offset=0)

    @precondition(lambda self: self.model)
    @rule(pick=st.integers(0, 63), cut=st.integers(1, 4))
    def split(self, pick, cut):
        region = sorted(self.model, key=lambda r: r.address)[
            pick % len(self.model)]
        start, end = self.model[region]
        offset = cut * PAGE
        if not 0 < offset < end - start:
            return
        upper = region.split(offset)
        self.model[region] = (region.address, region.end)
        self.model[upper] = (upper.address, upper.end)

    @precondition(lambda self: self.model)
    @rule(pick=st.integers(0, 63))
    def destroy(self, pick):
        region = sorted(self.model, key=lambda r: r.address)[
            pick % len(self.model)]
        region.destroy()
        del self.model[region]

    @invariant()
    def region_list_agrees(self):
        expected = sorted(self.model, key=lambda r: r.address)
        assert self.context.get_region_list() == expected
        assert self.context.regions == expected

    @invariant()
    def point_queries_agree(self):
        for slot in range(SLOTS + 1):
            address = self._addr(slot)
            expected = next(
                (r for r, (start, end) in self.model.items()
                 if start <= address < end), None)
            assert self.context._region_at(address) is expected

    @invariant()
    def range_queries_agree(self):
        for slot in range(0, SLOTS, 3):
            for pages in (1, 2, 5):
                lo, hi = self._addr(slot), self._addr(slot + pages)
                expected = [r for r in sorted(self.model,
                                              key=lambda r: r.address)
                            if self.model[r][0] < hi
                            and lo < self.model[r][1]]
                assert self.context.regions_overlapping(
                    lo, hi - lo) == expected


TestRegionMapModel = RegionMapMachine.TestCase
TestRegionMapModel.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
