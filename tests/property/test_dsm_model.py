"""Model-based test of the DSM protocol: last-writer-wins coherence.

Random interleavings of site reads and writes over a shared segment,
checked against the trivial model (one global bytearray).  Catches
stale-read bugs, lost invalidations, and sync-ordering mistakes in the
protocol's use of the GMI control operations.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, rule,
)

from repro.dsm import make_dsm_cluster
from repro.units import KB

PAGE = 8 * KB
SITES = ("a", "b", "c")
PAGES = 3

site_names = st.sampled_from(SITES)
page_indexes = st.integers(0, PAGES - 1)
byte_values = st.integers(1, 255)
offsets = st.integers(0, PAGE - 16)


class DsmMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.manager, self.sites = make_dsm_cluster(
            list(SITES), segment_pages=PAGES)
        self.model = bytearray(PAGES * PAGE)

    @rule(site=site_names, page=page_indexes, offset=offsets,
          value=byte_values)
    def site_write(self, site, page, offset, value):
        data = bytes([value]) * 16
        position = page * PAGE + offset
        self.sites[site].write(position, data)
        self.model[position:position + 16] = data

    @rule(site=site_names, page=page_indexes, offset=offsets)
    def site_read(self, site, page, offset):
        position = page * PAGE + offset
        expected = bytes(self.model[position:position + 16])
        assert self.sites[site].read(position, 16) == expected

    @rule(site=site_names, page=page_indexes)
    def full_page_read(self, site, page):
        expected = bytes(self.model[page * PAGE:(page + 1) * PAGE])
        assert self.sites[site].read(page * PAGE, PAGE) == expected

    @invariant()
    def single_writer_invariant(self):
        if not hasattr(self, "manager"):
            return
        for offset, entry in self.manager.pages.items():
            if entry.owner is not None:
                assert entry.state.value == "exclusive"
                assert entry.readers == {entry.owner}


TestDsmModel = DsmMachine.TestCase
TestDsmModel.settings = settings(max_examples=40, stateful_step_count=40,
                                 deadline=None)
