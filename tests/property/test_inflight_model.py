"""Model-based tests of the in-flight fault table.

Two angles on the same claim set — concurrent faulters on overlapping
extents never double-charge, never lose a wakeup, and always observe
the installed mapping:

* :class:`InFlightProtocolMachine` replays the fault-path protocol
  against the table single-threaded: every pull either *begins* a new
  extent (charged once) or *joins* the covering one (charged never),
  fills land page-by-page in arbitrary order, and the table's view
  must track the model exactly throughout.

* :class:`TestConcurrentFaulters` runs the real thing: racing reader
  threads over a :class:`PagedVirtualMemory` with an asynchronous
  provider, where hypothesis draws the page layout.  One ``PULL_IN``
  charge per distinct page, every thread wakes, every byte observed.
"""

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, rule,
)

from repro.errors import InvalidOperation
from repro.gmi.upcalls import SegmentProvider
from repro.kernel.clock import CostEvent
from repro.kernel.sync import ThreadedSync
from repro.pvm import PagedVirtualMemory
from repro.units import KB, MB

PAGE = 4 * KB
SPAN_PAGES = 16               # the machine's address window, in pages


class FakeCache:
    _serial = 0

    def __init__(self, name):
        FakeCache._serial += 1
        self.cache_id = FakeCache._serial
        self.name = name


class InFlightProtocolMachine(RuleBasedStateMachine):
    """The fault path's contract with the table, against a set model.

    Model state per cache: a dict ``start_page -> set(pages still in
    transit)``.  A pull overlapping a live extent must *join* (the
    real path sleeps on the entry's stub); a disjoint pull *begins*.
    """

    @initialize()
    def setup(self):
        from repro.engine import InFlightTable

        sync = ThreadedSync()
        self.table = InFlightTable(sync, sync.lock(), page_size=PAGE)
        self.caches = (FakeCache("a"), FakeCache("b"))
        # cache_id -> {start_offset: (entry, set of outstanding pages)}
        self.model = {cache.cache_id: {} for cache in self.caches}
        self.begun = 0
        self.joined = 0

    def _live(self, cache):
        return self.model[cache.cache_id]

    def _covering_extent(self, cache, start, end):
        for extent_start, (entry, _) in self._live(cache).items():
            if extent_start < end and entry.end > start:
                return entry
        return None

    @rule(cache_index=st.integers(0, 1),
          page=st.integers(0, SPAN_PAGES - 1),
          pages=st.integers(1, 4),
          skew=st.integers(0, PAGE - 1))
    def pull(self, cache_index, page, pages, skew):
        """A faulter arrives for [offset, offset+size): begin or join."""
        cache = self.caches[cache_index]
        offset = page * PAGE + skew
        size = pages * PAGE
        start = page * PAGE                       # page-aligned begin
        end = (offset + size + PAGE - 1) // PAGE * PAGE
        in_flight = self._covering_extent(cache, start, end)
        if in_flight is not None:
            # The overlap carries stubs: a correct faulter must join,
            # and a buggy re-pull must be refused loudly.
            with pytest.raises(InvalidOperation):
                self.table.begin(cache, offset, size)
            self.table.join(in_flight)
            self.joined += 1
        else:
            entry = self.table.begin(cache, offset, size)
            assert entry.offset == start and entry.end == end
            outstanding = set(range(start, end, PAGE))
            assert entry.remaining == len(outstanding)
            self._live(cache)[start] = (entry, outstanding)
            self.begun += 1

    @rule(cache_index=st.integers(0, 1), pick=st.integers(0, 255))
    def land_page(self, cache_index, pick):
        """One page of some in-flight extent arrives (any order)."""
        cache = self.caches[cache_index]
        live = self._live(cache)
        if not live:
            return
        start = sorted(live)[pick % len(live)]
        entry, outstanding = live[start]
        page = sorted(outstanding)[pick % len(outstanding)]
        outstanding.discard(page)
        entry.page_done()
        if outstanding:
            assert not entry.done
        else:
            # Last page landed: the extent must retire *immediately* —
            # a later faulter must re-look-up the installed mapping,
            # not find a stale stub.
            assert entry.done
            del live[start]

    @rule(cache_index=st.integers(0, 1))
    def destroy_cache_without_inflight(self, cache_index):
        """release() of a quiesced cache forgets nothing live."""
        cache = self.caches[cache_index]
        if self._live(cache):
            return
        self.table.release(cache.cache_id)

    @invariant()
    def table_tracks_model(self):
        if not hasattr(self, "table"):
            return
        live_total = sum(len(extents) for extents in self.model.values())
        assert self.table.depth == live_total
        # Charged exactly once per extent, never per joiner.
        assert self.table.stats["begun"] == self.begun
        assert self.table.stats["joined"] == self.joined
        assert self.table.stats["completed"] == self.begun - live_total
        for cache in self.caches:
            for start, (entry, outstanding) in self._live(cache).items():
                for page in range(start, entry.end, PAGE):
                    covering = self.table.covering(cache, page)
                    assert covering is entry
                    # Every page of the run shares one condition: a
                    # single broadcast covers all sleepers, so a
                    # wakeup cannot be lost to the "wrong" page.
                    assert covering.condition is entry.condition
                assert entry.remaining == len(outstanding)


TestInFlightProtocol = InFlightProtocolMachine.TestCase
TestInFlightProtocol.settings = settings(
    max_examples=60, stateful_step_count=50, deadline=None)


class AsyncProvider(SegmentProvider):
    """Serves each pullIn from its own worker thread after a delay,
    counting pulls per page offset."""

    def __init__(self, delay=0.005):
        self.delay = delay
        self.pulls = {}
        self.threads = []
        self._mutex = threading.Lock()

    def pull_in(self, cache, offset, size, access_mode):
        with self._mutex:
            for page in range(offset, offset + size, PAGE):
                self.pulls[page] = self.pulls.get(page, 0) + 1

        def worker():
            time.sleep(self.delay)
            cache.fill_up(offset, b"\x77" * size)

        thread = threading.Thread(target=worker)
        self.threads.append(thread)
        thread.start()

    def push_out(self, cache, offset, size):
        cache.copy_back(offset, size)

    def segment_create(self, cache):
        return "async"

    def join(self):
        for thread in self.threads:
            thread.join(timeout=10)


class TestConcurrentFaulters:
    @given(layout=st.lists(
        st.lists(st.integers(0, 7), min_size=1, max_size=6),
        min_size=2, max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_race_never_double_charges_or_hangs(self, layout):
        """N racing faulters over overlapping pages: one PULL_IN per
        distinct page, every thread wakes with the installed bytes."""
        vm = PagedVirtualMemory(memory_size=4 * MB, page_size=PAGE,
                                sync=ThreadedSync())
        provider = AsyncProvider()
        cache = vm.cache_create(provider)
        failures = []

        def faulter(pages):
            try:
                for page in pages:
                    data = vm.cache_read(cache, page * PAGE, 2)
                    if data != b"\x77\x77":
                        failures.append((page, data))
            except BaseException as exc:       # surfaced on the main thread
                failures.append(exc)

        threads = [threading.Thread(target=faulter, args=(pages,))
                   for pages in layout]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        provider.join()
        # No lost wakeup: every faulter came back.
        assert not any(thread.is_alive() for thread in threads)
        assert not failures
        # Never double-charged: one pull (and one PULL_IN cost event)
        # per distinct page, however the faulters interleaved.
        distinct = {page for pages in layout for page in pages}
        assert provider.pulls == {page * PAGE: 1 for page in distinct}
        assert vm.clock.count(CostEvent.PULL_IN) == len(distinct)
        assert vm.inflight.depth == 0
