"""Model-based property test of the deferred-copy machinery.

A :class:`hypothesis` state machine drives random interleavings of
writes, deferred copies (history, per-page, eager), mapped access,
flushes, collapses and cache destructions against the PVM — under
real memory pressure (tiny RAM, evictions happen) — and checks every
byte against a trivially-correct reference model (plain bytearrays
with eager copies).

If history trees, per-page stubs, the pageout path or the fault path
ever disagree with copy semantics, this machine finds the sequence.
"""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, precondition, rule,
)

from repro.gmi.interface import CopyPolicy
from repro.gmi.types import Protection
from repro.gmi.upcalls import ZeroFillProvider
from repro.pvm import PagedVirtualMemory
from repro.units import KB

PAGE = 8 * KB
SEGMENT_PAGES = 6
NUM_CACHES = 5
#: Tiny RAM: 24 frames for up to 30 logical pages -> evictions occur.
RAM_FRAMES = 24

cache_ids = st.integers(min_value=0, max_value=NUM_CACHES - 1)
page_indexes = st.integers(min_value=0, max_value=SEGMENT_PAGES - 1)
byte_values = st.integers(min_value=1, max_value=255)
policies = st.sampled_from([CopyPolicy.HISTORY, CopyPolicy.PER_PAGE,
                            CopyPolicy.EAGER])


class CowMachine(RuleBasedStateMachine):
    """Random copy/write/read interleavings vs a reference model."""

    vm_class = PagedVirtualMemory
    ram_frames = RAM_FRAMES

    @initialize()
    def setup(self):
        self.vm = self.vm_class(memory_size=self.ram_frames * PAGE,
                                page_size=PAGE)
        self.context = self.vm.context_create("prop")
        self.caches = {}
        self.model = {}
        self.regions = {}
        for index in range(NUM_CACHES):
            self._make_cache(index)

    def _make_cache(self, index):
        self.caches[index] = self.vm.cache_create(
            ZeroFillProvider(), name=f"c{index}")
        self.model[index] = bytearray(SEGMENT_PAGES * PAGE)

    # -- rules -----------------------------------------------------------------

    @rule(cache=cache_ids, page=page_indexes, value=byte_values)
    def write_page(self, cache, page, value):
        data = bytes([value]) * 64
        self.caches[cache].write(page * PAGE, data)
        self.model[cache][page * PAGE:page * PAGE + 64] = data

    @rule(cache=cache_ids, page=page_indexes, value=byte_values,
          offset=st.integers(min_value=0, max_value=PAGE - 8))
    def write_unaligned(self, cache, page, value, offset):
        data = bytes([value]) * 8
        position = page * PAGE + offset
        self.caches[cache].write(position, data)
        self.model[cache][position:position + 8] = data

    @rule(src=cache_ids, dst=cache_ids, src_page=page_indexes,
          dst_page=page_indexes, pages=st.integers(min_value=1, max_value=3),
          policy=policies)
    def copy(self, src, dst, src_page, dst_page, pages, policy):
        pages = min(pages, SEGMENT_PAGES - src_page,
                    SEGMENT_PAGES - dst_page)
        if src == dst and policy is not CopyPolicy.EAGER:
            return
        if src == dst and self._ranges_overlap(src_page, dst_page, pages):
            return
        self.caches[src].copy(src_page * PAGE, self.caches[dst],
                              dst_page * PAGE, pages * PAGE, policy=policy)
        snapshot = bytes(
            self.model[src][src_page * PAGE:(src_page + pages) * PAGE])
        self.model[dst][dst_page * PAGE:(dst_page + pages) * PAGE] = snapshot

    @staticmethod
    def _ranges_overlap(a, b, pages):
        return a < b + pages and b < a + pages

    @rule(src=cache_ids, dst=cache_ids, src_page=page_indexes,
          dst_page=page_indexes)
    def move(self, src, dst, src_page, dst_page):
        if src == dst:
            return
        self.caches[src].move(src_page * PAGE, self.caches[dst],
                              dst_page * PAGE, PAGE)
        snapshot = bytes(
            self.model[src][src_page * PAGE:(src_page + 1) * PAGE])
        self.model[dst][dst_page * PAGE:(dst_page + 1) * PAGE] = snapshot
        # Source contents become undefined: model them as zeroes and
        # re-establish that in the real cache too (write-after-move is
        # the only defined use).
        self.caches[src].write(src_page * PAGE, bytes(PAGE))
        self.model[src][src_page * PAGE:(src_page + 1) * PAGE] = bytes(PAGE)

    @rule(cache=cache_ids, page=page_indexes)
    def flush_page(self, cache, page):
        self.caches[cache].flush(page * PAGE, PAGE)

    @rule(cache=cache_ids)
    def sync_all(self, cache):
        self.caches[cache].sync(0, SEGMENT_PAGES * PAGE)

    @rule(cache=cache_ids)
    def collapse(self, cache):
        self.vm.collapse_history(self.caches[cache])

    @rule(cache=cache_ids)
    def recycle_cache(self, cache):
        """Destroy and recreate: exercises dead-node retention."""
        region = self.regions.pop(cache, None)
        if region is not None:
            region.destroy()
        self.caches[cache].destroy()
        self._make_cache(cache)

    @rule(cache=cache_ids, page=page_indexes, value=byte_values)
    def mapped_write(self, cache, page, value):
        region = self.regions.get(cache)
        if region is None:
            address = 0x100000 + cache * 0x100000
            region = self.context.region_create(
                address, SEGMENT_PAGES * PAGE, protection=Protection.RW,
                cache=self.caches[cache], offset=0)
            self.regions[cache] = region
        data = bytes([value]) * 32
        self.vm.user_write(self.context,
                           region.address + page * PAGE + 16, data)
        base = page * PAGE + 16
        self.model[cache][base:base + 32] = data

    @rule(src=cache_ids, dst=cache_ids, src_page=page_indexes,
          dst_page=page_indexes,
          pages=st.integers(min_value=1, max_value=2))
    def copy_on_reference(self, src, dst, src_page, dst_page, pages):
        pages = min(pages, SEGMENT_PAGES - src_page,
                    SEGMENT_PAGES - dst_page)
        if src == dst:
            return
        self.caches[src].copy(src_page * PAGE, self.caches[dst],
                              dst_page * PAGE, pages * PAGE,
                              policy=CopyPolicy.HISTORY,
                              on_reference=True)
        snapshot = bytes(
            self.model[src][src_page * PAGE:(src_page + pages) * PAGE])
        self.model[dst][dst_page * PAGE:(dst_page + pages) * PAGE] = snapshot

    @rule(cache=cache_ids, page=page_indexes)
    def lock_unlock_page(self, cache, page):
        self.caches[cache].lock_in_memory(page * PAGE, PAGE)
        self.caches[cache].unlock(page * PAGE, PAGE)

    @rule(cache=cache_ids, page=page_indexes)
    def check_page(self, cache, page):
        expected = bytes(self.model[cache][page * PAGE:(page + 1) * PAGE])
        actual = self.caches[cache].read(page * PAGE, PAGE)
        assert actual == expected

    @rule(cache=cache_ids, page=page_indexes)
    def check_mapped(self, cache, page):
        region = self.regions.get(cache)
        if region is None:
            return
        expected = bytes(self.model[cache][page * PAGE:page * PAGE + 128])
        actual = self.vm.user_read(self.context,
                                   region.address + page * PAGE, 128)
        assert actual == expected

    # -- global invariants --------------------------------------------------------

    @invariant()
    def memory_not_over_committed(self):
        if hasattr(self, "vm"):
            assert self.vm.memory.allocated_frames <= self.ram_frames

    @invariant()
    def global_map_consistent(self):
        if not hasattr(self, "vm"):
            return
        for (cache_id, offset), entry in self.vm.global_map:
            if hasattr(entry, "frame"):
                assert entry.cache.pages.get(offset) is entry


class MachCowMachine(CowMachine):
    """The same semantics must hold for shadow objects."""

    from repro.mach import MachVirtualMemory as vm_class


class RealTimeCowMachine(CowMachine):
    """...and for the eager real-time MM (which never pages, so give
    it enough RAM to hold everything)."""

    from repro.minimal import RealTimeVirtualMemory as vm_class
    ram_frames = NUM_CACHES * SEGMENT_PAGES + 4


_SETTINGS = settings(max_examples=60, stateful_step_count=40, deadline=None)
_QUICK = settings(max_examples=25, stateful_step_count=30, deadline=None)

TestCowModel = CowMachine.TestCase
TestCowModel.settings = _SETTINGS
TestMachCowModel = MachCowMachine.TestCase
TestMachCowModel.settings = _QUICK
TestRealTimeCowModel = RealTimeCowMachine.TestCase
TestRealTimeCowModel.settings = _QUICK
