"""Property test: fault clustering never changes the golden accounting.

Twin managers — one clustering, one not — replay the same random touch
sequence (reads and writes; sequential runs, random scatter, long
jumps, revisits).  Whatever the access pattern does to the read-ahead
heuristics, the virtual clock, every mechanism counter and all
user-visible bytes must be bit-identical; clustering may only change
how many provider upcalls it took to get there.
"""

from hypothesis import given, settings, strategies as st

from repro.cache.provider import ZeroFillProvider
from repro.gmi.types import Protection
from repro.pvm import PagedVirtualMemory
from repro.units import KB

PAGE = 8 * KB
PAGES = 24
BASE = 0x40000

#: A touch: (page index, is_write).  Sequences mix short sequential
#: bursts with arbitrary scatter, so the adaptive streak detector gets
#: opened, extended, broken and re-opened at random.
touches = st.lists(
    st.tuples(st.integers(min_value=0, max_value=PAGES - 1),
              st.booleans()),
    min_size=1, max_size=60)

policies = st.sampled_from(["fixed:4", "fixed:16", "adaptive"])
advices = st.sampled_from([None, "sequential", "random"])


def run(policy, sequence, advice):
    vm = PagedVirtualMemory(memory_size=4 * 1024 * KB,
                            cluster_policy=policy)
    cache = vm.cache_create(ZeroFillProvider(), name="prop")
    context = vm.context_create("prop")
    context.region_create(BASE, PAGES * PAGE, protection=Protection.RW,
                          cache=cache, offset=0, advice=advice)
    context.switch()
    for index, write in sequence:
        vaddr = BASE + index * PAGE
        if write:
            vm.user_write(context, vaddr, bytes([index + 1]))
        else:
            vm.user_read(context, vaddr, 1)
    data = vm.user_read(context, BASE, PAGES * PAGE)
    # engine.cluster.*, engine.inflight.* and io.queue.* describe how
    # the engine shaped the work (window sizes, pull spans, queued
    # requests) — clustering is allowed to change those; everything it
    # accounts for (charges, faults, pulls, hits/misses) must not move.
    # space.inflight_wait is the per-space projection of
    # engine.inflight.coalesced, so it rides the same exemption.
    counters = {
        key: value
        for key, value in vm.metrics_snapshot()["counters"].items()
        if not key.startswith(("engine.cluster.", "engine.inflight.",
                               "io.queue.", "space.inflight_wait"))
    }
    return vm.clock.now(), counters, data


@settings(max_examples=60, deadline=None)
@given(sequence=touches, policy=policies, advice=advices)
def test_clustered_run_is_accounting_identical(sequence, policy, advice):
    base = run(None, sequence, advice)
    clustered = run(policy, sequence, advice)
    assert clustered[0] == base[0], "virtual clock diverged"
    assert clustered[1] == base[1], "mechanism counters diverged"
    assert clustered[2] == base[2], "user-visible bytes diverged"
