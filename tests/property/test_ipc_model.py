"""Model-based IPC test: ports are lossless FIFO queues; payloads
arrive intact regardless of path (inline vs transit), interleaving, or
sender-side mutation after send."""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, precondition, rule,
)

from repro.errors import IpcError, ResourceExhausted
from repro.gmi.upcalls import ZeroFillProvider
from repro.ipc import IpcSubsystem
from repro.pvm import PagedVirtualMemory
from repro.units import KB, MB

PAGE = 8 * KB
PORTS = ("p0", "p1")

port_names = st.sampled_from(PORTS)
payload_sizes = st.sampled_from([5, 100, PAGE, 2 * PAGE])
byte_values = st.integers(1, 255)


class IpcMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.vm = PagedVirtualMemory(memory_size=4 * MB)
        self.ipc = IpcSubsystem(self.vm, transit_slots=4)
        for name in PORTS:
            self.ipc.create_port(name)
        self.src = self.vm.cache_create(ZeroFillProvider(), name="src")
        self.dst = self.vm.cache_create(ZeroFillProvider(), name="dst")
        self.model = {name: [] for name in PORTS}

    @rule(port=port_names, size=payload_sizes, value=byte_values)
    def send_inline(self, port, size, value):
        payload = bytes([value]) * size
        try:
            self.ipc.send(port, data=payload)
        except ResourceExhausted:
            return
        self.model[port].append(payload)

    @rule(port=port_names, size=payload_sizes, value=byte_values)
    def send_from_cache(self, port, size, value):
        payload = bytes([value]) * size
        self.vm.cache_write(self.src, 0, payload)
        try:
            self.ipc.send(port, src_cache=self.src, src_offset=0,
                          size=size)
        except ResourceExhausted:
            return
        self.model[port].append(payload)
        # Sender mutates immediately: the message must keep its snapshot.
        self.vm.cache_write(self.src, 0, b"\x00" * size)

    @rule(port=port_names, into_cache=st.booleans())
    def receive(self, port, into_cache):
        if not self.model[port]:
            with pytest.raises(IpcError):
                self.ipc.receive(port)
            return
        expected = self.model[port].pop(0)
        if into_cache:
            message = self.ipc.receive(port, dst_cache=self.dst,
                                       dst_offset=0)
            landed = self.vm.cache_read(self.dst, 0, len(expected))
            assert landed == expected
        else:
            message = self.ipc.receive(port)
            assert message.inline[:len(expected)] == expected
        assert message.size == len(expected)

    @invariant()
    def queue_depths_match(self):
        if not hasattr(self, "ipc"):
            return
        for name in PORTS:
            assert self.ipc.lookup_port(name).pending == \
                len(self.model[name])

    @invariant()
    def transit_slots_conserved(self):
        if not hasattr(self, "ipc"):
            return
        in_flight = sum(
            1 for name in PORTS
            for message in self.ipc.lookup_port(name).queue
            if message.slot is not None
        )
        assert self.ipc.transit.free_slots + in_flight == \
            self.ipc.transit.slots


TestIpcModel = IpcMachine.TestCase
TestIpcModel.settings = settings(max_examples=50, stateful_step_count=40,
                                 deadline=None)
