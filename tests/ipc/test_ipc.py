"""IPC: ports, the two data paths, and transit-slot recycling."""

import pytest

from repro.errors import IpcError, ResourceExhausted
from repro.gmi.upcalls import ZeroFillProvider
from repro.ipc import IpcSubsystem, Message
from repro.kernel.clock import CostEvent
from repro.pvm import PagedVirtualMemory
from repro.units import IPC_MESSAGE_LIMIT, KB, MB

PAGE = 8 * KB


@pytest.fixture
def vm():
    return PagedVirtualMemory(memory_size=8 * MB)


@pytest.fixture
def ipc(vm):
    return IpcSubsystem(vm, transit_slots=4)


def make_cache(vm, name=None):
    return vm.cache_create(ZeroFillProvider(), name=name)


class TestPorts:
    def test_create_and_lookup(self, ipc):
        port = ipc.create_port("p1")
        assert ipc.lookup_port("p1") is port

    def test_duplicate_name_rejected(self, ipc):
        ipc.create_port("p1")
        with pytest.raises(IpcError):
            ipc.create_port("p1")

    def test_dead_port_unreachable(self, ipc):
        ipc.create_port("p1")
        ipc.destroy_port("p1")
        with pytest.raises(IpcError):
            ipc.send("p1", data=b"x")

    def test_receive_on_empty_port(self, ipc):
        ipc.create_port("p1")
        with pytest.raises(IpcError):
            ipc.receive("p1")


class TestInlinePath:
    def test_small_message_roundtrip(self, ipc):
        ipc.create_port("p")
        ipc.send("p", header={"tag": 7}, data=b"small payload")
        message = ipc.receive("p")
        assert message.inline == b"small payload"
        assert message.header["tag"] == 7

    def test_message_size_limit(self, ipc):
        ipc.create_port("p")
        with pytest.raises(IpcError):
            ipc.send("p", data=bytes(IPC_MESSAGE_LIMIT + 1))

    def test_queue_preserves_order(self, ipc):
        ipc.create_port("p")
        for index in range(5):
            ipc.send("p", data=bytes([index]))
        received = [ipc.receive("p").inline[0] for _ in range(5)]
        assert received == [0, 1, 2, 3, 4]

    def test_inline_delivery_into_cache(self, vm, ipc):
        ipc.create_port("p")
        ipc.send("p", data=b"into the cache")
        dst = make_cache(vm, "dst")
        ipc.receive("p", dst_cache=dst, dst_offset=100)
        assert dst.read(100, 14) == b"into the cache"


class TestTransitPath:
    def test_aligned_send_uses_transit_slot(self, vm, ipc):
        src = make_cache(vm, "src")
        src.write(0, b"page payload")
        ipc.create_port("p")
        ipc.send("p", src_cache=src, src_offset=0, size=2 * PAGE)
        assert ipc.clock.count(CostEvent.TRANSIT_SLOT) == 1
        # The copy into the slot was deferred per-page.
        assert ipc.clock.count(CostEvent.COW_STUB_INSERT) == 2
        assert ipc.transit.free_slots == 3

    def test_receive_moves_into_destination(self, vm, ipc):
        src = make_cache(vm, "src")
        src.write(0, b"moved not copied")
        ipc.create_port("p")
        ipc.send("p", src_cache=src, src_offset=0, size=PAGE)
        dst = make_cache(vm, "dst")
        message = ipc.receive("p", dst_cache=dst, dst_offset=4 * PAGE)
        assert message.size == PAGE
        assert dst.read(4 * PAGE, 16) == b"moved not copied"
        assert ipc.transit.free_slots == 4          # slot recycled

    def test_sender_can_modify_after_send(self, vm, ipc):
        """The send snapshot is protected by per-page COW."""
        src = make_cache(vm, "src")
        src.write(0, b"original")
        ipc.create_port("p")
        ipc.send("p", src_cache=src, src_offset=0, size=PAGE)
        src.write(0, b"mutated!")
        dst = make_cache(vm, "dst")
        ipc.receive("p", dst_cache=dst, dst_offset=0)
        assert dst.read(0, 8) == b"original"

    def test_unaligned_cache_send_falls_back_to_bcopy(self, vm, ipc):
        src = make_cache(vm, "src")
        src.write(100, b"unaligned")
        ipc.create_port("p")
        ipc.send("p", src_cache=src, src_offset=100, size=9)
        message = ipc.receive("p")
        assert message.inline == b"unaligned"
        assert ipc.clock.count(CostEvent.TRANSIT_SLOT) == 0

    def test_slot_exhaustion(self, vm, ipc):
        src = make_cache(vm, "src")
        src.write(0, b"x")
        ipc.create_port("p")
        for _ in range(4):
            ipc.send("p", src_cache=src, src_offset=0, size=PAGE)
        with pytest.raises(ResourceExhausted):
            ipc.send("p", src_cache=src, src_offset=0, size=PAGE)
        # Draining a message frees a slot again.
        ipc.receive("p")
        ipc.send("p", src_cache=src, src_offset=0, size=PAGE)

    def test_receive_without_destination_returns_bytes(self, vm, ipc):
        src = make_cache(vm, "src")
        src.write(0, b"as bytes")
        ipc.create_port("p")
        ipc.send("p", src_cache=src, src_offset=0, size=PAGE)
        message = ipc.receive("p")
        assert message.inline[:8] == b"as bytes"


class TestServerPorts:
    def test_rpc_roundtrip(self, ipc):
        def handler(message):
            return Message(header={"echo": message.header["value"] * 2})

        ipc.create_port("server", handler=handler)
        reply = ipc.send("server", header={"value": 21})
        assert reply.header["echo"] == 42

    def test_cannot_receive_on_server_port(self, ipc):
        ipc.create_port("server", handler=lambda m: Message())
        with pytest.raises(IpcError):
            ipc.receive("server")

    def test_server_send_recycles_transit_slot(self, vm, ipc):
        src = make_cache(vm, "src")
        src.write(0, b"rpc body")
        seen = []

        def handler(message):
            seen.append(message.size)
            return Message()

        ipc.create_port("server", handler=handler)
        for _ in range(10):                         # > slot count
            ipc.send("server", src_cache=src, src_offset=0, size=PAGE)
        assert seen == [PAGE] * 10
        assert ipc.transit.free_slots == 4


class TestIpcDecoupling:
    def test_ipc_never_changes_regions(self, vm, ipc):
        """Section 5.1.6: IPC has no region side effects."""
        from repro.gmi.types import Protection
        ctx = vm.context_create()
        cache = make_cache(vm)
        ctx.region_create(0x40000, 2 * PAGE, protection=Protection.RW,
                          cache=cache, offset=0)
        vm.user_write(ctx, 0x40000, b"region data")
        regions_before = [(r.address, r.size) for r in ctx.get_region_list()]
        ipc.create_port("p")
        ipc.send("p", src_cache=cache, src_offset=0, size=PAGE)
        ipc.receive("p", dst_cache=make_cache(vm), dst_offset=0)
        regions_after = [(r.address, r.size) for r in ctx.get_region_list()]
        assert regions_before == regions_after
