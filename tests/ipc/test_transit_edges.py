"""Transit-segment slot management edge cases."""

import pytest

from repro.errors import ResourceExhausted
from repro.gmi.upcalls import ZeroFillProvider
from repro.ipc.transit import TransitSegment
from repro.pvm import PagedVirtualMemory
from repro.units import IPC_MESSAGE_LIMIT, KB, MB

PAGE = 8 * KB


@pytest.fixture
def vm():
    return PagedVirtualMemory(memory_size=8 * MB)


class TestSlotAllocator:
    def test_slot_offsets_disjoint(self, vm):
        transit = TransitSegment(vm, slots=4)
        slots = [transit.allocate() for _ in range(4)]
        offsets = [transit.slot_offset(slot) for slot in slots]
        assert len(set(offsets)) == 4
        for offset in offsets:
            assert offset % TransitSegment.SLOT_SIZE == 0

    def test_exhaustion_and_reuse(self, vm):
        transit = TransitSegment(vm, slots=2)
        a = transit.allocate()
        b = transit.allocate()
        with pytest.raises(ResourceExhausted):
            transit.allocate()
        transit.release(a)
        assert transit.allocate() == a

    def test_high_water_mark(self, vm):
        transit = TransitSegment(vm, slots=4)
        a = transit.allocate()
        transit.release(a)
        transit.allocate()
        transit.allocate()
        assert transit.high_water == 2

    def test_release_drops_leftover_pages(self, vm):
        transit = TransitSegment(vm, slots=2)
        slot = transit.allocate()
        offset = transit.slot_offset(slot)
        transit.cache.write(offset, b"leftover payload")
        resident_before = vm.resident_page_count
        transit.release(slot)
        assert vm.resident_page_count < resident_before
        # A fresh use of the slot sees no stale bytes.
        again = transit.allocate()
        assert transit.cache.read(transit.slot_offset(again), 8) == bytes(8)

    def test_slot_size_is_the_ipc_limit(self, vm):
        assert TransitSegment.SLOT_SIZE == IPC_MESSAGE_LIMIT


class TestMessageValidation:
    def test_oversized_inline_rejected(self):
        from repro.errors import IpcError
        from repro.ipc.message import Message
        with pytest.raises(IpcError):
            Message(inline=bytes(IPC_MESSAGE_LIMIT + 1))

    def test_oversized_slot_payload_rejected(self):
        from repro.errors import IpcError
        from repro.ipc.message import Message
        with pytest.raises(IpcError):
            Message(slot=0, size=IPC_MESSAGE_LIMIT + 1)

    def test_inline_sets_size(self):
        from repro.ipc.message import Message
        message = Message(inline=b"12345")
        assert message.size == 5
        assert not message.in_transit_slot
