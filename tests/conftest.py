"""Shared fixtures: a fresh PVM rig per test."""

import pytest

from repro.gmi.upcalls import ZeroFillProvider
from repro.gmi.types import Protection
from repro.pvm import PagedVirtualMemory
from repro.units import KB, MB

PAGE = 8 * KB


@pytest.fixture
def pvm():
    """A PVM over 4 MB of simulated RAM (8 KB pages)."""
    return PagedVirtualMemory(memory_size=4 * MB)


@pytest.fixture
def ctx(pvm):
    return pvm.context_create("test")


@pytest.fixture
def make_cache(pvm):
    """Factory for anonymous (zero-fill) caches."""
    def factory(name=None):
        return pvm.cache_create(ZeroFillProvider(), name=name)
    return factory


@pytest.fixture
def mapped(pvm, ctx, make_cache):
    """A 64 KB RW region at 0x100000 over a fresh cache."""
    cache = make_cache("mapped")
    region = ctx.region_create(0x100000, 64 * KB, protection=Protection.RW,
                               cache=cache, offset=0)
    return cache, region
